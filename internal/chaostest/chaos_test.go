package chaostest

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"blobseer/internal/chunk"
	"blobseer/internal/client"
	"blobseer/internal/core"
	"blobseer/internal/faultdom"
	"blobseer/internal/metrics"
	"blobseer/internal/storetest"
)

// blobSet tracks what a scenario wrote so later phases can verify it.
type blobSet struct {
	ids      []uint64
	versions map[uint64]uint64
	payloads map[uint64][]byte
}

func newBlobSet() *blobSet {
	return &blobSet{versions: map[uint64]uint64{}, payloads: map[uint64][]byte{}}
}

func (bs *blobSet) write(t *testing.T, cl *client.Client, chunkSize int64, payload []byte) {
	t.Helper()
	info, err := cl.Create(chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	ver, err := cl.Write(info.ID, 0, payload)
	if err != nil {
		t.Fatalf("write blob %d: %v", info.ID, err)
	}
	bs.ids = append(bs.ids, info.ID)
	bs.versions[info.ID] = ver
	bs.payloads[info.ID] = payload
}

func (bs *blobSet) verify(t *testing.T, cl *client.Client) {
	t.Helper()
	ctx := context.Background()
	for _, id := range bs.ids {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		got, err := cl.ReadContext(rctx, id, bs.versions[id], 0, int64(len(bs.payloads[id])))
		cancel()
		if err != nil {
			t.Fatalf("read blob %d: %v", id, err)
		}
		if !bytes.Equal(got, bs.payloads[id]) {
			t.Fatalf("blob %d: read corrupt payload", id)
		}
	}
}

func mkPayload(n int, tag byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + tag
	}
	return p
}

// TestPartitionDegradedOperation is the acceptance scenario from the
// paper's fault model: one replica of three partitions away mid-
// workload. Reads must keep succeeding from the survivors with p99
// bounded by the configured call deadline, writes must re-route and
// still meet the quorum, the failure detector must declare the victim
// dead and steer placement off it, and once the partition heals the
// cluster must converge to exactly zero leaked chunks and leases.
func TestPartitionDegradedOperation(t *testing.T) {
	const (
		victim    = "provider000"
		callTO    = 250 * time.Millisecond
		chunkSize = 1 << 10
	)
	// The blackhole: a conn that hangs far beyond every deadline, but
	// only while the injector is enabled — flipping it simulates the
	// partition opening and healing.
	black := storetest.NewInjector(1, 1)
	black.SetEnabled(false)
	slowR := storetest.NewRand(7)
	cache := newConnCache(func(id string, conn client.Conn) client.Conn {
		if id != victim {
			return conn
		}
		return &storetest.SlowConn{Inner: conn, R: slowR, MaxDelay: 30 * time.Second, Inj: black}
	})
	reg := metrics.NewRegistry()
	c := newCluster(t, core.Options{
		Providers: 4, Replicas: 3, WriteQuorum: 2,
		Monitoring: false, GCGraceEpochs: -1,
		Metrics: reg,
		Fault: &faultdom.Config{
			CallTimeout:      callTO,
			Retry:            faultdom.RetryPolicy{MaxAttempts: 1}, // fail over, don't retry in place
			BreakerThreshold: 3,
			BreakerCooldown:  300 * time.Millisecond,
			SuspectAfter:     2,
			DeadAfter:        6,
		},
		WrapConn: cache.wrap,
	})
	cl := c.Client("alice")

	// Healthy phase: seed the cluster.
	bs := newBlobSet()
	for i := 0; i < 8; i++ {
		bs.write(t, cl, chunkSize, mkPayload(4*chunkSize, byte(i)))
	}
	bs.verify(t, cl)

	// Partition one replica of three.
	black.SetEnabled(true)

	// Degraded GETs: every single-chunk read must be served by the two
	// surviving replicas. The first few pay one call deadline probing
	// the victim; after that the detector's suspicion reorders reads
	// healthy-first and the breaker fast-fails, so p99 stays within
	// the deadline budget. Asserted, not eyeballed.
	var lat []time.Duration
	for round := 0; round < 15; round++ {
		for _, id := range bs.ids {
			for ck := int64(0); ck < 4; ck++ {
				rctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				start := time.Now()
				got, err := cl.ReadContext(rctx, id, bs.versions[id], ck*chunkSize, chunkSize)
				lat = append(lat, time.Since(start))
				cancel()
				if err != nil {
					t.Fatalf("degraded read blob %d chunk %d: %v", id, ck, err)
				}
				want := bs.payloads[id][ck*chunkSize : (ck+1)*chunkSize]
				if !bytes.Equal(got, want) {
					t.Fatalf("degraded read blob %d chunk %d: corrupt payload", id, ck)
				}
			}
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	if limit := callTO + 150*time.Millisecond; p99 > limit {
		t.Fatalf("degraded-read p99 = %v, want <= %v (n=%d, max=%v)", p99, limit, len(lat), lat[len(lat)-1])
	}

	// Degraded PUTs: placement vetoes the unhealthy victim, so writes
	// re-route to the three survivors and meet the 2-of-3 quorum.
	for i := 0; i < 6; i++ {
		bs.write(t, cl, chunkSize, mkPayload(2*chunkSize, byte(0x40+i)))
	}

	// Active failure detection: pings drive the victim to Dead, and
	// placement stops handing it chunks entirely.
	waitFor(t, "detector to declare the victim dead", func() bool {
		c.Tick(time.Now())
		return c.Fault.Detector.State(victim) == faultdom.Dead
	})
	place, err := c.PM.Allocate(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range place {
		for _, id := range set {
			if id == victim {
				t.Fatalf("placement %v still allocates to dead provider %s", place, victim)
			}
		}
	}
	if familyTotal(reg, "blobseer_breaker_transitions_total") == 0 {
		t.Error("no breaker transitions recorded during the partition")
	}
	if familyTotal(reg, "blobseer_health_transitions_total") == 0 {
		t.Error("no health transitions recorded during the partition")
	}

	// Heal the partition: pings revive the victim — breaker closes,
	// detector returns to alive — and the full data set reads back.
	black.SetEnabled(false)
	waitFor(t, "victim revival after heal", func() bool {
		c.Tick(time.Now())
		return c.Fault.Healthy(victim) && c.Fault.Detector.State(victim) == faultdom.Alive
	})
	bs.verify(t, cl)

	converge(t, c, bs.ids)
}

// TestFlakyRetriesAndMetrics: a 20% fault rate on every link is fully
// absorbed by the retry policy — the workload succeeds end to end, the
// retries are visible in blobseer_rpc_retries_total, and nothing leaks.
func TestFlakyRetriesAndMetrics(t *testing.T) {
	const chunkSize = 1 << 10
	inj := storetest.NewInjector(42, 0.2)
	cache := newConnCache(func(id string, conn client.Conn) client.Conn {
		return &storetest.FlakyConn{Inner: conn, Inj: inj}
	})
	reg := metrics.NewRegistry()
	c := newCluster(t, core.Options{
		Providers: 3, Replicas: 2, WriteQuorum: 1,
		Monitoring: false, GCGraceEpochs: -1,
		Metrics: reg,
		Fault: &faultdom.Config{
			CallTimeout:      time.Second,
			Retry:            faultdom.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
			BreakerThreshold: 1000, // flaky, not down: keep the breaker out of the way
		},
		WrapConn: cache.wrap,
	})
	cl := c.Client("bob")

	bs := newBlobSet()
	for i := 0; i < 10; i++ {
		bs.write(t, cl, chunkSize, mkPayload(2*chunkSize, byte(i)))
	}
	bs.verify(t, cl)

	if familyTotal(reg, "blobseer_rpc_retries_total") == 0 {
		t.Fatal("no retries recorded despite a 20% injected fault rate")
	}

	inj.SetEnabled(false)
	converge(t, c, bs.ids)
}

// TestInProcCallDeadline: the satellite deadline check for the in-proc
// plane — a conn hanging far past the budget is abandoned after one
// CallTimeout, and the error classifies transient so callers fail over.
func TestInProcCallDeadline(t *testing.T) {
	cache := newConnCache(func(id string, conn client.Conn) client.Conn {
		return &storetest.SlowConn{Inner: conn, R: storetest.NewRand(3), MaxDelay: 30 * time.Second}
	})
	c := newCluster(t, core.Options{
		Providers: 1, Replicas: 1, Monitoring: false,
		Fault: &faultdom.Config{
			CallTimeout: 100 * time.Millisecond,
			Retry:       faultdom.RetryPolicy{MaxAttempts: 1},
		},
		WrapConn: cache.wrap,
	})
	ctx := context.Background()
	conn, err := c.Lookup(ctx, "provider000")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []struct {
		name string
		call func() error
	}{
		{"store", func() error { return conn.Store(ctx, "alice", chunk.ID{}, []byte("x")) }},
		{"fetch", func() error { _, err := conn.Fetch(ctx, "alice", chunk.ID{}); return err }},
	} {
		start := time.Now()
		err := op.call()
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("%s against a hung provider succeeded", op.name)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s error = %v, want deadline exceeded", op.name, err)
		}
		if got := faultdom.Classify(err); got != faultdom.Transient {
			t.Fatalf("%s deadline error classified %v, want transient", op.name, got)
		}
		if elapsed > 600*time.Millisecond {
			t.Fatalf("%s took %v, want bounded by the 100ms call deadline", op.name, elapsed)
		}
	}
}
