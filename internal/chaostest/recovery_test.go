package chaostest

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blobseer/internal/client"
	"blobseer/internal/core"
	"blobseer/internal/faultdom"
	"blobseer/internal/provider"
	"blobseer/internal/s3gate"
	"blobseer/internal/storetest"
)

// TestCrashRestartRecovery: a provider crashes mid-workload and later
// restarts empty. While it is down, reads fail over to the surviving
// replica and writes re-route; the detector declares it dead. After the
// restart, pings revive it, replication maintenance restores every
// chunk's degree, and the cluster converges clean.
func TestCrashRestartRecovery(t *testing.T) {
	const (
		victim    = "provider000"
		chunkSize = 1 << 10
	)
	var crash *storetest.CrashStore
	c := newCluster(t, core.Options{
		Providers: 3, Replicas: 2, WriteQuorum: 1,
		Monitoring: false, GCGraceEpochs: -1,
		Fault: &faultdom.Config{
			CallTimeout:      500 * time.Millisecond,
			Retry:            faultdom.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
			BreakerThreshold: 3,
			BreakerCooldown:  200 * time.Millisecond,
			SuspectAfter:     2,
			DeadAfter:        4,
		},
		ProviderStore: func(id string) provider.Store {
			if id != victim {
				return provider.NewMemStore(0)
			}
			crash = storetest.NewCrashStore(provider.NewMemStore(0), func() provider.LifecycleStore {
				return provider.NewMemStore(0)
			})
			return crash
		},
	})
	cl := c.Client("carol")

	bs := newBlobSet()
	for i := 0; i < 6; i++ {
		bs.write(t, cl, chunkSize, mkPayload(2*chunkSize, byte(i)))
	}
	bs.verify(t, cl)

	crash.Crash()

	// Degraded: reads fail over to the surviving replica, writes keep
	// landing on the healthy majority.
	bs.verify(t, cl)
	for i := 0; i < 4; i++ {
		bs.write(t, cl, chunkSize, mkPayload(2*chunkSize, byte(0x60+i)))
	}
	waitFor(t, "detector to declare the crashed provider dead", func() bool {
		c.Tick(time.Now())
		return c.Fault.Detector.State(victim) == faultdom.Dead
	})

	// Restart empty (the crash lost the disk) and wait for revival.
	crash.Restart(true)
	waitFor(t, "crashed provider revival", func() bool {
		c.Tick(time.Now())
		return c.Fault.Healthy(victim) && c.Fault.Detector.State(victim) == faultdom.Alive
	})

	// Self-optimization heals the replication degree the wipe cost us.
	waitFor(t, "replication heal after restart", func() bool {
		rep, err := c.Heal(time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return rep.UnderReplicated == 0 && rep.Repaired == 0 && rep.Failed == 0
	})
	bs.verify(t, cl)

	converge(t, c, bs.ids)
}

// TestQuorumFailureSurfacesRetryable503: with every provider behind a
// partition the write quorum cannot be met, and the S3 gateway maps the
// typed transient error to a retryable 503 SlowDown — not a generic
// 500. Once the partition heals (and breaker cooldowns elapse) the same
// PUT succeeds.
func TestQuorumFailureSurfacesRetryable503(t *testing.T) {
	inj := storetest.NewInjector(9, 1) // p=1: a full partition, shared cut switch
	inj.SetEnabled(false)
	cache := newConnCache(func(id string, conn client.Conn) client.Conn {
		return &storetest.FlakyConn{Inner: conn, Inj: inj}
	})
	c := newCluster(t, core.Options{
		Providers: 3, Replicas: 2, WriteQuorum: 2,
		Monitoring: false, GCGraceEpochs: -1,
		Fault: &faultdom.Config{
			CallTimeout:      200 * time.Millisecond,
			Retry:            faultdom.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
			BreakerThreshold: 3,
			BreakerCooldown:  50 * time.Millisecond,
		},
		WrapConn: cache.wrap,
	})
	srv := httptest.NewServer(s3gate.New(c))
	defer srv.Close()

	do := func(method, path, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := do(http.MethodPut, "/chaos", ""); code != http.StatusOK {
		t.Fatalf("create bucket: %d %s", code, body)
	}

	// Partition every provider: the PUT cannot reach its quorum and
	// must surface as a retryable 503 SlowDown.
	inj.SetEnabled(true)
	code, body := do(http.MethodPut, "/chaos/key", "payload-under-partition")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("partitioned PUT: got %d %s, want 503", code, body)
	}
	if !strings.Contains(body, "SlowDown") {
		t.Fatalf("partitioned PUT error %q lacks the retryable SlowDown code", body)
	}

	// Heal: after breaker cooldowns, the identical PUT goes through and
	// the object reads back.
	inj.SetEnabled(false)
	waitFor(t, "PUT recovery after partition heal", func() bool {
		code, _ := do(http.MethodPut, "/chaos/key", "payload-after-heal")
		return code == http.StatusOK
	})
	if code, body := do(http.MethodGet, "/chaos/key", ""); code != http.StatusOK || body != "payload-after-heal" {
		t.Fatalf("GET after heal: %d %q", code, body)
	}
}
