package chaostest

import (
	"context"
	"sync"
	"testing"
	"time"

	"blobseer/internal/client"
	"blobseer/internal/core"
	"blobseer/internal/metrics"
	"blobseer/internal/storetest"
)

// newCluster builds a deployment for a chaos scenario. Unlike the GC
// suite's fixed-instant clock, faults here interact with breaker
// cooldowns and half-open probing, so the default clock advances.
func newCluster(t *testing.T, opts core.Options) *core.Cluster {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.ProviderStore == nil {
		opts.ProviderStore = storetest.Factory(t)
	}
	c, err := core.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func totalChunks(c *core.Cluster) int {
	n := 0
	for _, id := range c.Providers() {
		if p, ok := c.Provider(id); ok {
			n += p.Stats().Chunks
		}
	}
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// converge deletes the given blobs and hammers the GC until the whole
// cluster drains: no chunks on any provider, no metadata tree nodes, no
// queued deletions and no live chunk leases. This is the post-fault
// acceptance bar — a partition or crash must not leak anything.
func converge(t *testing.T, c *core.Cluster, blobs []uint64) {
	t.Helper()
	ctx := context.Background()
	for _, id := range blobs {
		if err := c.GC.DeleteBlob(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "post-fault convergence", func() bool {
		if _, err := c.GC.Sweep(ctx, false); err != nil {
			t.Fatal(err)
		}
		st := c.GC.Stats()
		return totalChunks(c) == 0 &&
			c.VM.MetaStore().Len() == 0 &&
			len(c.VM.DeletedBlobs()) == 0 &&
			st.ActiveLeases == 0
	})
}

// connCache hands every provider one stable conn wrapper across Lookup
// calls, so injected fault state (partition flags, injector decisions)
// survives re-resolution instead of resetting with each fresh wrap.
type connCache struct {
	mu sync.Mutex
	m  map[string]client.Conn
	mk func(id string, conn client.Conn) client.Conn
}

func newConnCache(mk func(id string, conn client.Conn) client.Conn) *connCache {
	return &connCache{m: map[string]client.Conn{}, mk: mk}
}

func (cc *connCache) wrap(id string, conn client.Conn) client.Conn {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.m[id]; ok {
		return c
	}
	c := cc.mk(id, conn)
	cc.m[id] = c
	return c
}

// familyTotal sums every sample of a metric family — enough to assert
// "retries happened" / "a breaker tripped" without pinning label sets.
func familyTotal(reg *metrics.Registry, name string) float64 {
	var sum float64
	for _, f := range reg.Snapshot() {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			sum += s.Value
		}
	}
	return sum
}
