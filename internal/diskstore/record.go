// The on-disk record format of the log-structured chunk store. Segment
// files are a pure append-only sequence of checksummed records; every
// record is self-contained and states the chunk's *absolute* reference
// count and epoch, never a delta. Absolute state is what makes
// compaction safe: a segment can be dropped once every chunk whose most
// recent authoritative record lives in it has been re-recorded in a
// newer segment — no earlier delta chain has to be preserved.
//
// Layout (little-endian):
//
//	[0:4]    magic "bsLg"
//	[4:8]    crc32 (IEEE) over bytes [8 : 57+payload)
//	[8]      record type
//	[9:13]   refs  (int32: absolute reference count after this record)
//	[13:21]  epoch (uint64: put-epoch tag, or the new epoch for recEpoch)
//	[21:53]  chunk ID (zero for recEpoch)
//	[53:57]  payload length n (uint32; non-zero only for recPut)
//	[57:57+n] payload
//
// A torn write can only damage the tail of the youngest segment (older
// segments were sealed by a clean roll); recovery verifies records
// sequentially and truncates the file at the first short or
// checksum-failing record.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"blobseer/internal/chunk"
)

// Record types.
const (
	// recPut carries a payload: a fresh chunk, or a compaction rewrite
	// relocating a live payload (refs then carries the current count).
	recPut = byte(1)
	// recState re-states a chunk's absolute refs+epoch without payload:
	// re-puts (refs+1), deletes (refs-1), purges and delete-to-zero
	// (refs=0, a tombstone), and compaction re-statements.
	recState = byte(2)
	// recEpoch persists an AdvanceEpoch: the epoch field holds the new
	// current epoch.
	recEpoch = byte(3)
)

const (
	headerSize = 57
	magicOff   = 0
	crcOff     = 4
	typeOff    = 8
	refsOff    = 9
	epochOff   = 13
	idOff      = 21
	lenOff     = 53
)

var magic = [4]byte{'b', 's', 'L', 'g'}

// ErrCorrupt reports a damaged record outside the recoverable tail.
var ErrCorrupt = errors.New("diskstore: corrupt segment record")

// record is one decoded log record.
type record struct {
	typ     byte
	refs    int32
	epoch   uint64
	id      chunk.ID
	payload []byte // recPut only; aliases the decode buffer
}

// encode appends the record's wire form to dst and returns it.
func (r *record) encode(dst []byte) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, headerSize)...)
	h := dst[base:]
	copy(h[magicOff:], magic[:])
	h[typeOff] = r.typ
	binary.LittleEndian.PutUint32(h[refsOff:], uint32(r.refs))
	binary.LittleEndian.PutUint64(h[epochOff:], r.epoch)
	copy(h[idOff:], r.id[:])
	binary.LittleEndian.PutUint32(h[lenOff:], uint32(len(r.payload)))
	dst = append(dst, r.payload...)
	crc := crc32.ChecksumIEEE(dst[base+typeOff:])
	binary.LittleEndian.PutUint32(dst[base+crcOff:], crc)
	return dst
}

// wireSize returns the encoded size of a record with an n-byte payload.
func wireSize(n int) int64 { return int64(headerSize + n) }

// decodeHeader parses and verifies the fixed header fields (not the
// checksum, which needs the payload too). A short or non-magic header
// means the record is torn.
func decodeHeader(h []byte) (r record, payloadLen int, err error) {
	if len(h) < headerSize {
		return r, 0, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(h))
	}
	if [4]byte(h[magicOff:crcOff]) != magic {
		return r, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r.typ = h[typeOff]
	if r.typ != recPut && r.typ != recState && r.typ != recEpoch {
		return r, 0, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, r.typ)
	}
	r.refs = int32(binary.LittleEndian.Uint32(h[refsOff:]))
	r.epoch = binary.LittleEndian.Uint64(h[epochOff:])
	copy(r.id[:], h[idOff:lenOff])
	payloadLen = int(binary.LittleEndian.Uint32(h[lenOff:]))
	if r.typ != recPut && payloadLen != 0 {
		return r, 0, fmt.Errorf("%w: payload on a %d record", ErrCorrupt, r.typ)
	}
	return r, payloadLen, nil
}

// verify checks the whole record's checksum over buf, which must hold
// header+payload exactly.
func verify(buf []byte) bool {
	want := binary.LittleEndian.Uint32(buf[crcOff:])
	return crc32.ChecksumIEEE(buf[typeOff:]) == want
}
