// TieredStore composes the lock-striped in-memory MemStore as a
// bounded hot tier over a DiskStore cold tier. The cold tier is the
// source of truth: every mutation lands there first, and every
// authoritative read-out (Used, Count, List, Epoch, Has, Keys) is
// answered by it, so the GC lifecycle contract is exactly the disk
// store's. The hot tier is purely a byte-bounded read cache with
// recency eviction: a Put writes through and leaves a hot copy
// (write-back demotion happens by LRU eviction, not by policy), and a
// cold Get promotes the chunk.
package diskstore

import (
	"container/list"
	"sync"

	"blobseer/internal/chunk"
	"blobseer/internal/metrics"
	"blobseer/internal/provider"
)

// TieredStore is a provider.Store + provider.LifecycleStore +
// provider.BufferedGetter with a RAM hot tier over a durable cold tier.
type TieredStore struct {
	cold *DiskStore

	hmu      sync.Mutex
	hot      *provider.MemStore
	lru      *list.List // front = most recent; values are *hotEntry
	ent      map[chunk.ID]*list.Element
	hotBytes int64 // bound (≤ 0 disables the hot tier entirely)
	hotUsed  int64

	// Hit/miss counters (nil until Instrument): lock-free, shared with
	// the registry so the tier placement ratio shows up on /metrics.
	hits, misses *metrics.Counter
	hotUsedGauge *metrics.Gauge
}

type hotEntry struct {
	id   chunk.ID
	size int64
}

// NewTiered wraps cold with a hot tier bounded to hotBytes of payload
// (≤ 0 disables caching: every read is served cold).
func NewTiered(cold *DiskStore, hotBytes int64) *TieredStore {
	return &TieredStore{
		cold:     cold,
		hot:      provider.NewMemStore(0),
		lru:      list.New(),
		ent:      make(map[chunk.ID]*list.Element),
		hotBytes: hotBytes,
	}
}

// Cold returns the underlying disk store (benchmarks measure it
// directly for cold-path numbers).
func (t *TieredStore) Cold() *DiskStore { return t.cold }

// Instrument publishes the tier's hit/miss counters and hot-tier
// occupancy into reg as blobseer_tier_fetches_total{result="hit"|"miss"}
// and blobseer_tier_hot_bytes. Call before serving traffic (the handles
// are installed without synchronization); a nil registry is a no-op.
func (t *TieredStore) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	fetches := reg.Counter("blobseer_tier_fetches_total",
		"Tiered-store chunk fetches by tier outcome.", "result")
	t.hits = fetches.With("hit")
	t.misses = fetches.With("miss")
	t.hotUsedGauge = reg.Gauge("blobseer_tier_hot_bytes",
		"Payload bytes resident in the RAM hot tier.").With()
}

// HotUsed returns the bytes currently held by the hot tier.
func (t *TieredStore) HotUsed() int64 {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	return t.hotUsed
}

// admit caches data under id, evicting least-recently-used chunks to
// stay under the byte bound. Oversized chunks are simply not cached.
func (t *TieredStore) admit(id chunk.ID, data []byte) {
	n := int64(len(data))
	if t.hotBytes <= 0 || n > t.hotBytes {
		return
	}
	t.hmu.Lock()
	defer t.hmu.Unlock()
	if el, ok := t.ent[id]; ok {
		t.lru.MoveToFront(el)
		return
	}
	for t.hotUsed+n > t.hotBytes {
		back := t.lru.Back()
		if back == nil {
			break
		}
		t.dropLocked(back.Value.(*hotEntry).id)
	}
	if err := t.hot.Put(id, data); err != nil {
		return // unbounded MemStore: cannot happen, stay cache-coherent anyway
	}
	t.ent[id] = t.lru.PushFront(&hotEntry{id: id, size: n})
	t.hotUsed += n
	if t.hotUsedGauge != nil {
		t.hotUsedGauge.Set(float64(t.hotUsed))
	}
}

// drop removes id from the hot tier if cached.
func (t *TieredStore) drop(id chunk.ID) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.dropLocked(id)
}

func (t *TieredStore) dropLocked(id chunk.ID) {
	el, ok := t.ent[id]
	if !ok {
		return
	}
	t.lru.Remove(el)
	delete(t.ent, id)
	t.hotUsed -= el.Value.(*hotEntry).size
	if t.hotUsedGauge != nil {
		t.hotUsedGauge.Set(float64(t.hotUsed))
	}
	_, _ = t.hot.Purge(id)
}

// hotGet serves id from the cache, refreshing its recency.
func (t *TieredStore) hotGet(id chunk.ID, dst []byte) ([]byte, bool) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	el, ok := t.ent[id]
	if !ok {
		return dst, false
	}
	out, err := t.hot.GetAppend(id, dst)
	if err != nil {
		return dst, false
	}
	t.lru.MoveToFront(el)
	return out, true
}

// Put writes through to the cold tier and leaves a hot copy.
func (t *TieredStore) Put(id chunk.ID, data []byte) error {
	if err := t.cold.Put(id, data); err != nil {
		return err
	}
	t.admit(id, data)
	return nil
}

// Get returns the chunk payload, hot tier first.
func (t *TieredStore) Get(id chunk.ID) ([]byte, error) {
	return t.GetAppend(id, nil)
}

// GetAppend implements provider.BufferedGetter. A cold hit promotes the
// chunk; if the chunk was deleted from the cold tier while the promote
// was in flight, the stale hot copy is dropped again (content
// addressing makes the returned bytes correct either way).
func (t *TieredStore) GetAppend(id chunk.ID, dst []byte) ([]byte, error) {
	if out, ok := t.hotGet(id, dst); ok {
		if t.hits != nil {
			t.hits.Inc()
		}
		return out, nil
	}
	if t.misses != nil {
		t.misses.Inc()
	}
	out, err := t.cold.GetAppend(id, dst)
	if err != nil {
		return nil, err
	}
	t.admit(id, out)
	if !t.cold.Has(id) {
		t.drop(id)
	}
	return out, nil
}

// Delete decrements the cold refcount; when that frees the chunk the
// hot copy is dropped too.
func (t *TieredStore) Delete(id chunk.ID) error {
	if err := t.cold.Delete(id); err != nil {
		return err
	}
	if !t.cold.Has(id) {
		t.drop(id)
	}
	return nil
}

// Purge implements provider.LifecycleStore against the cold tier and
// evicts the hot copy.
func (t *TieredStore) Purge(id chunk.ID) (int64, error) {
	freed, err := t.cold.Purge(id)
	t.drop(id)
	return freed, err
}

// List implements provider.LifecycleStore against the cold tier (the
// cache holds no chunk the cold tier does not).
func (t *TieredStore) List(after chunk.ID, limit int) ([]provider.ChunkInfo, bool) {
	return t.cold.List(after, limit)
}

// Epoch implements provider.LifecycleStore.
func (t *TieredStore) Epoch() uint64 { return t.cold.Epoch() }

// AdvanceEpoch implements provider.LifecycleStore.
func (t *TieredStore) AdvanceEpoch() uint64 { return t.cold.AdvanceEpoch() }

// Has reports cold-tier presence (the authoritative set).
func (t *TieredStore) Has(id chunk.ID) bool { return t.cold.Has(id) }

// Keys returns the cold tier's chunk IDs in unspecified order.
func (t *TieredStore) Keys() []chunk.ID { return t.cold.Keys() }

// Used returns the cold tier's live payload bytes.
func (t *TieredStore) Used() int64 { return t.cold.Used() }

// Count returns the cold tier's distinct live chunk count.
func (t *TieredStore) Count() int { return t.cold.Count() }

// Close closes the cold tier and empties the cache.
func (t *TieredStore) Close() error {
	err := t.cold.Close()
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.lru.Init()
	t.ent = make(map[chunk.ID]*list.Element)
	t.hotUsed = 0
	return err
}
