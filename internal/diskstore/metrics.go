package diskstore

import (
	"time"

	"blobseer/internal/metrics"
)

// storeMetrics holds the disk store's pre-resolved metric handles. A nil
// *storeMetrics (no Options.Metrics registry) disables instrumentation
// entirely — the data path then pays no clock reads.
type storeMetrics struct {
	appendDur  *metrics.Histogram // Put (log append + index update)
	readDur    *metrics.Histogram // GetAppend (index lookup + pread)
	compactDur *metrics.Histogram // CompactOnce scan + rewrites
	recovery   *metrics.Gauge     // Open replay duration, seconds
	segments   *metrics.Gauge     // live segment files
}

func newStoreMetrics(reg *metrics.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	return &storeMetrics{
		appendDur: reg.Histogram("blobseer_disk_append_seconds",
			"Log-structured store append (Put) latency.", metrics.DurationBuckets).With(),
		readDur: reg.Histogram("blobseer_disk_read_seconds",
			"Log-structured store chunk read latency.", metrics.DurationBuckets).With(),
		compactDur: reg.Histogram("blobseer_disk_compaction_seconds",
			"Segment compaction pass latency (CompactOnce).", metrics.DurationBuckets).With(),
		recovery: reg.Gauge("blobseer_disk_recovery_seconds",
			"Duration of the last segment replay on Open.").With(),
		segments: reg.Gauge("blobseer_disk_segments",
			"Live segment files on disk.").With(),
	}
}

// since books the elapsed time since t0 into h. Callers guard the
// m == nil (uninstrumented) case before reading any field off m.
func (m *storeMetrics) since(h *metrics.Histogram, t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}
