package diskstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"blobseer/internal/chunk"
	"blobseer/internal/provider"
)

// Interface conformance: the whole point of the package is slotting in
// behind the provider seam.
var (
	_ provider.Store          = (*DiskStore)(nil)
	_ provider.LifecycleStore = (*DiskStore)(nil)
	_ provider.BufferedGetter = (*DiskStore)(nil)
	_ provider.Store          = (*TieredStore)(nil)
	_ provider.LifecycleStore = (*TieredStore)(nil)
	_ provider.BufferedGetter = (*TieredStore)(nil)
)

// open creates a store in a fresh temp dir with the background
// compactor off (tests drive CompactOnce explicitly) and small segments
// so rolls happen.
func open(t *testing.T, opts Options) (*DiskStore, string) {
	t.Helper()
	dir := t.TempDir()
	return reopen(t, dir, opts), dir
}

func reopen(t *testing.T, dir string, opts Options) *DiskStore {
	t.Helper()
	if opts.CompactEvery == 0 {
		opts.CompactEvery = -1
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func payload(i int, n int) []byte {
	b := make([]byte, n)
	r := rand.New(rand.NewSource(int64(i)))
	r.Read(b)
	return b
}

func mustPut(t *testing.T, s provider.Store, data []byte) chunk.ID {
	t.Helper()
	id := chunk.Sum(data)
	if err := s.Put(id, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	return id
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := open(t, Options{})
	data := payload(1, 4096)
	id := mustPut(t, s, data)
	got, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	if s.Used() != 4096 || s.Count() != 1 {
		t.Fatalf("Used=%d Count=%d, want 4096/1", s.Used(), s.Count())
	}
	if _, err := s.Get(chunk.Sum([]byte("absent"))); err != provider.ErrNotFound {
		t.Fatalf("absent Get err = %v, want ErrNotFound", err)
	}
}

func TestRefcountSemanticsMatchMemStore(t *testing.T) {
	// The disk store must mirror MemStore's contract exactly: re-put
	// bumps refs and refreshes the epoch tag, Delete decrements and
	// frees at zero, Delete of an absent chunk is ErrNotFound, Purge
	// frees wholesale and tolerates absence.
	s, _ := open(t, Options{})
	data := payload(2, 100)
	id := mustPut(t, s, data)
	s.AdvanceEpoch()
	mustPut(t, s, data) // refs=2, epoch tag refreshed to 1

	infos, _ := s.List(chunk.ID{}, 10)
	if len(infos) != 1 || infos[0].Refs != 2 || infos[0].Epoch != 1 {
		t.Fatalf("after re-put: %+v", infos)
	}
	if s.Used() != 100 {
		t.Fatalf("Used=%d, want 100 (each chunk once)", s.Used())
	}

	if err := s.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !s.Has(id) || s.Used() != 100 {
		t.Fatal("refs=1 chunk should survive one Delete")
	}
	if err := s.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Has(id) || s.Used() != 0 || s.Count() != 0 {
		t.Fatal("refs=0 chunk should be freed")
	}
	if err := s.Delete(id); err != provider.ErrNotFound {
		t.Fatalf("Delete absent err = %v, want ErrNotFound", err)
	}

	id2 := mustPut(t, s, payload(3, 50))
	mustPut(t, s, payload(3, 50))
	freed, err := s.Purge(id2)
	if err != nil || freed != 50 {
		t.Fatalf("Purge = (%d, %v), want (50, nil)", freed, err)
	}
	if freed, err := s.Purge(id2); err != nil || freed != 0 {
		t.Fatalf("Purge absent = (%d, %v), want (0, nil)", freed, err)
	}
}

func TestCapacity(t *testing.T) {
	s, _ := open(t, Options{Capacity: 1000})
	mustPut(t, s, payload(4, 600))
	big := payload(5, 500)
	if err := s.Put(chunk.Sum(big), big); err != provider.ErrFull {
		t.Fatalf("over-capacity Put err = %v, want ErrFull", err)
	}
	// Freeing makes room again.
	if err := s.Delete(chunk.Sum(payload(4, 600))); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Put(chunk.Sum(big), big); err != nil {
		t.Fatalf("Put after free: %v", err)
	}
}

func TestListPaging(t *testing.T) {
	s, _ := open(t, Options{SegmentBytes: 8 << 10})
	want := make([]chunk.ID, 0, 100)
	for i := 0; i < 100; i++ {
		want = append(want, mustPut(t, s, payload(1000+i, 64)))
	}
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i][:], want[j][:]) < 0 })

	var got []chunk.ID
	var after chunk.ID
	for {
		page, more := s.List(after, 7)
		for _, ci := range page {
			got = append(got, ci.ID)
		}
		if !more {
			break
		}
		after = page[len(page)-1].ID
	}
	if len(got) != len(want) {
		t.Fatalf("paged out %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("page order diverges at %d", i)
		}
	}
}

func TestRecoveryCleanRestart(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{SegmentBytes: 4 << 10})
	type row struct {
		id   chunk.ID
		data []byte
	}
	var rows []row
	for i := 0; i < 40; i++ {
		d := payload(2000+i, 200)
		rows = append(rows, row{mustPut(t, s, d), d})
	}
	mustPut(t, s, rows[0].data) // refs=2
	s.AdvanceEpoch()
	s.AdvanceEpoch()
	if err := s.Delete(rows[1].id); err != nil {
		t.Fatal(err)
	}
	wantUsed, wantCount, wantEpoch := s.Used(), s.Count(), s.Epoch()
	s.Close()

	s2 := reopen(t, dir, Options{SegmentBytes: 4 << 10})
	if s2.Used() != wantUsed || s2.Count() != wantCount || s2.Epoch() != wantEpoch {
		t.Fatalf("recovered Used=%d Count=%d Epoch=%d, want %d/%d/%d",
			s2.Used(), s2.Count(), s2.Epoch(), wantUsed, wantCount, wantEpoch)
	}
	for i, r := range rows {
		if i == 1 {
			if s2.Has(r.id) {
				t.Fatal("deleted chunk resurrected by replay")
			}
			continue
		}
		got, err := s2.Get(r.id)
		if err != nil || !bytes.Equal(got, r.data) {
			t.Fatalf("chunk %d lost or corrupt after restart: %v", i, err)
		}
	}
	infos, _ := s2.List(chunk.ID{}, 1)
	if len(infos) == 0 {
		t.Fatal("List empty after restart")
	}
	// The re-put chunk carries refs=2 across the restart.
	for _, ci := range listAll(s2) {
		if ci.ID == rows[0].id && ci.Refs != 2 {
			t.Fatalf("re-put chunk refs=%d after restart, want 2", ci.Refs)
		}
	}
}

func listAll(s provider.LifecycleStore) []provider.ChunkInfo {
	var out []provider.ChunkInfo
	var after chunk.ID
	for {
		page, more := s.List(after, 64)
		out = append(out, page...)
		if !more {
			break
		}
		after = page[len(page)-1].ID
	}
	return out
}

// lastSegment returns the path of the youngest (active) segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segment files in %s: %v", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// TestKillPointMidRecord truncates the youngest segment mid-record —
// the torn-tail shape an append crash leaves — at every byte boundary
// inside the last record, asserting Open recovers every fully-written
// chunk with exact Used()/refcount state and drops only the torn one.
func TestKillPointMidRecord(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	var ids []chunk.ID
	var datas [][]byte
	for i := 0; i < 5; i++ {
		d := payload(3000+i, 333)
		ids = append(ids, mustPut(t, s, d))
		datas = append(datas, d)
	}
	s.Close()

	seg := lastSegment(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recSize := int(wireSize(333))
	if len(full) != 5*recSize {
		t.Fatalf("segment is %d bytes, want %d", len(full), 5*recSize)
	}
	lastStart := 4 * recSize

	// Cut at a spread of points inside the last record: header-torn,
	// payload-torn, one byte short.
	for _, cut := range []int{1, headerSize - 1, headerSize, headerSize + 100, recSize - 1} {
		cutAt := lastStart + cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			sub := t.TempDir()
			for _, p := range []string{seg} {
				b := full[:cutAt]
				if err := os.WriteFile(filepath.Join(sub, filepath.Base(p)), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			r := reopen(t, sub, Options{})
			if r.Count() != 4 || r.Used() != 4*333 {
				t.Fatalf("recovered Count=%d Used=%d, want 4/%d", r.Count(), r.Used(), 4*333)
			}
			for i := 0; i < 4; i++ {
				got, err := r.Get(ids[i])
				if err != nil || !bytes.Equal(got, datas[i]) {
					t.Fatalf("chunk %d not recovered: %v", i, err)
				}
			}
			if r.Has(ids[4]) {
				t.Fatal("torn chunk should be gone")
			}
			// The torn tail is truncated, so new appends land cleanly.
			nid := mustPut(t, r, payload(9999, 10))
			if !r.Has(nid) {
				t.Fatal("post-recovery Put lost")
			}
		})
	}
}

// TestKillPointRecordBoundary truncates exactly at record boundaries:
// recovery must keep precisely the records before the cut.
func TestKillPointRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	var ids []chunk.ID
	for i := 0; i < 6; i++ {
		ids = append(ids, mustPut(t, s, payload(4000+i, 128)))
	}
	// A state record too: delete one chunk so the log tail mixes types.
	if err := s.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := lastSegment(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	putSize := int(wireSize(128))
	for _, keep := range []int{1, 3, 6} {
		t.Run(fmt.Sprintf("keep=%d", keep), func(t *testing.T) {
			sub := t.TempDir()
			b := full[:keep*putSize]
			if err := os.WriteFile(filepath.Join(sub, filepath.Base(seg)), b, 0o644); err != nil {
				t.Fatal(err)
			}
			r := reopen(t, sub, Options{})
			if r.Count() != keep || r.Used() != int64(keep*128) {
				t.Fatalf("Count=%d Used=%d, want %d/%d", r.Count(), r.Used(), keep, keep*128)
			}
			for i := 0; i < keep; i++ {
				if !r.Has(ids[i]) {
					t.Fatalf("chunk %d missing", i)
				}
			}
			for i := keep; i < 6; i++ {
				if r.Has(ids[i]) {
					t.Fatalf("chunk %d should not have survived the cut", i)
				}
			}
		})
	}
	t.Run("full-log", func(t *testing.T) {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(seg)), full, 0o644); err != nil {
			t.Fatal(err)
		}
		r := reopen(t, sub, Options{})
		// All six puts plus the delete replayed.
		if r.Count() != 5 || r.Has(ids[0]) {
			t.Fatalf("Count=%d Has(deleted)=%v, want 5/false", r.Count(), r.Has(ids[0]))
		}
	})
}

// TestCorruptionInSealedSegmentFails: damage outside the recoverable
// tail must fail the open loudly, not silently drop data.
func TestCorruptionInSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{SegmentBytes: 2 << 10})
	for i := 0; i < 30; i++ {
		mustPut(t, s, payload(5000+i, 256))
	}
	s.Close()

	names, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	sort.Strings(names)
	if len(names) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(names))
	}
	// Flip a payload byte in the first (sealed) segment.
	b, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+10] ^= 0xFF
	if err := os.WriteFile(names[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{CompactEvery: -1}); err == nil {
		t.Fatal("Open succeeded over mid-log corruption")
	}
}

func TestCompactionReclaimsGarbage(t *testing.T) {
	s, _ := open(t, Options{SegmentBytes: 4 << 10})
	var ids []chunk.ID
	for i := 0; i < 64; i++ {
		ids = append(ids, mustPut(t, s, payload(6000+i, 256)))
	}
	// Kill three quarters of them: most sealed segments drop below the
	// live-fraction threshold.
	for i, id := range ids {
		if i%4 != 0 {
			if _, err := s.Purge(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.DiskUsage()
	dropped, reclaimed, err := s.CompactOnce()
	if err != nil {
		t.Fatalf("CompactOnce: %v", err)
	}
	if dropped == 0 || reclaimed == 0 {
		t.Fatalf("compaction found nothing (dropped=%d reclaimed=%d)", dropped, reclaimed)
	}
	if after := s.DiskUsage(); after >= before {
		t.Fatalf("DiskUsage %d → %d: no shrink", before, after)
	}
	// Survivors still read back.
	for i, id := range ids {
		if i%4 != 0 {
			continue
		}
		got, err := s.Get(id)
		if err != nil || !bytes.Equal(got, payload(6000+i, 256)) {
			t.Fatalf("survivor %d lost after compaction: %v", i, err)
		}
	}
}

// TestCompactionSurvivesRestart: compaction rewrites + segment drops
// must replay to the identical logical state.
func TestCompactionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{SegmentBytes: 4 << 10})
	var ids []chunk.ID
	for i := 0; i < 64; i++ {
		ids = append(ids, mustPut(t, s, payload(7000+i, 256)))
	}
	mustPut(t, s, payload(7000, 256)) // survivor with refs=2
	for i, id := range ids {
		if i%4 != 0 {
			if _, err := s.Purge(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := s.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	wantUsed, wantCount := s.Used(), s.Count()
	want := listAll(s)
	s.Close()

	r := reopen(t, dir, Options{SegmentBytes: 4 << 10})
	if r.Used() != wantUsed || r.Count() != wantCount {
		t.Fatalf("replayed Used=%d Count=%d, want %d/%d", r.Used(), r.Count(), wantUsed, wantCount)
	}
	got := listAll(r)
	if len(got) != len(want) {
		t.Fatalf("replayed %d chunks, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("chunk state diverges after replay: %+v vs %+v", got[i], want[i])
		}
	}
	for i, id := range ids {
		if i%4 != 0 {
			continue
		}
		if _, err := r.Get(id); err != nil {
			t.Fatalf("survivor %d unreadable after compaction+restart: %v", i, err)
		}
	}
}

// TestTombstoneOutlivesPayloadRecord: purge a chunk, compact only the
// tombstone-holding segment away would resurrect it on replay if the
// deadKey bookkeeping were wrong. Exercised by purging chunks whose
// payload segments stay above the live threshold, compacting, and
// restarting.
func TestTombstoneOutlivesPayloadRecord(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{SegmentBytes: 8 << 10, CompactLiveFraction: 0.9})
	// Segment 1: mostly-live payloads (stays above 0.9? no — make it
	// exactly: 24 chunks, purge 2 → live 22/24 > 0.9 keeps it).
	var keep, dead []chunk.ID
	for i := 0; i < 24; i++ {
		id := mustPut(t, s, payload(8000+i, 300))
		if i < 2 {
			dead = append(dead, id)
		} else {
			keep = append(keep, id)
		}
	}
	// Roll into a fresh segment, then fill it with state records only
	// (the purges) plus filler puts that then get purged too, making the
	// tombstone segment a compaction victim while the payload segment
	// is not.
	for _, id := range dead {
		if _, err := s.Purge(id); err != nil {
			t.Fatal(err)
		}
	}
	var filler []chunk.ID
	for i := 0; i < 40; i++ {
		filler = append(filler, mustPut(t, s, payload(8500+i, 300)))
	}
	for _, id := range filler {
		if _, err := s.Purge(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	wantCount := s.Count()
	if s.Has(dead[0]) || s.Has(dead[1]) {
		t.Fatal("purged chunks still present before restart")
	}
	s.Close()

	r := reopen(t, dir, Options{SegmentBytes: 8 << 10, CompactLiveFraction: 0.9})
	if r.Has(dead[0]) || r.Has(dead[1]) {
		t.Fatal("purged chunk resurrected: tombstone dropped while payload record lived")
	}
	if r.Count() != wantCount {
		t.Fatalf("Count=%d after restart, want %d", r.Count(), wantCount)
	}
	for _, id := range keep {
		if !r.Has(id) {
			t.Fatal("live chunk lost")
		}
	}
}

// TestChurnMatchesMemStoreReference drives identical randomized
// operation streams into a DiskStore and the MemStore reference model
// under concurrency, then asserts List paging agrees exactly.
func TestChurnMatchesMemStoreReference(t *testing.T) {
	s, _ := open(t, Options{SegmentBytes: 16 << 10})
	ref := provider.NewMemStore(0)

	const workers = 8
	const opsPer = 300
	// Each worker owns a disjoint key space so the same logical op
	// stream applies cleanly to both stores without cross-worker
	// ordering mattering.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			var mine []chunk.ID
			datum := func(i int) []byte { return payload(w*100000+i, 64+r.Intn(192)) }
			for i := 0; i < opsPer; i++ {
				switch op := r.Intn(10); {
				case op < 5: // put
					d := datum(i)
					id := chunk.Sum(d)
					if err := s.Put(id, d); err != nil {
						t.Errorf("disk Put: %v", err)
						return
					}
					if err := ref.Put(id, d); err != nil {
						t.Errorf("ref Put: %v", err)
						return
					}
					mine = append(mine, id)
				case op < 8: // delete
					if len(mine) == 0 {
						continue
					}
					id := mine[r.Intn(len(mine))]
					de, re := s.Delete(id), ref.Delete(id)
					if (de == nil) != (re == nil) {
						t.Errorf("Delete divergence: disk=%v ref=%v", de, re)
						return
					}
				default: // purge
					if len(mine) == 0 {
						continue
					}
					id := mine[r.Intn(len(mine))]
					df, de := s.Purge(id)
					rf, re := ref.Purge(id)
					if de != nil || re != nil || df != rf {
						t.Errorf("Purge divergence: disk=(%d,%v) ref=(%d,%v)", df, de, rf, re)
						return
					}
				}
				if i%50 == 0 {
					if _, _, err := s.CompactOnce(); err != nil {
						t.Errorf("CompactOnce: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if s.Used() != ref.Used() || s.Count() != ref.Count() {
		t.Fatalf("totals diverge: disk Used=%d Count=%d, ref Used=%d Count=%d",
			s.Used(), s.Count(), ref.Used(), ref.Count())
	}
	// Page both stores with an awkward page size and compare exactly.
	var after chunk.ID
	for {
		dp, dm := s.List(after, 13)
		rp, rm := ref.List(after, 13)
		if len(dp) != len(rp) || dm != rm {
			t.Fatalf("page shape diverges: disk %d/%v ref %d/%v", len(dp), dm, len(rp), rm)
		}
		for i := range dp {
			if dp[i].ID != rp[i].ID || dp[i].Size != rp[i].Size || dp[i].Refs != rp[i].Refs {
				t.Fatalf("page entry diverges: %+v vs %+v", dp[i], rp[i])
			}
		}
		if !dm {
			break
		}
		after = dp[len(dp)-1].ID
	}
}

func TestBackgroundCompactor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 4 << 10, CompactEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []chunk.ID
	for i := 0; i < 64; i++ {
		ids = append(ids, mustPut(t, s, payload(9000+i, 256)))
	}
	for _, id := range ids[:48] {
		if _, err := s.Purge(id); err != nil {
			t.Fatal(err)
		}
	}
	deadline := 200
	for ; deadline > 0; deadline-- {
		if s.Segments() < 8 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatalf("background compactor never shrank the store (%d segments)", s.Segments())
	}
	for _, id := range ids[48:] {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("survivor unreadable: %v", err)
		}
	}
}

func TestCloseIdempotentAndFailsOps(t *testing.T) {
	s, _ := open(t, Options{})
	id := mustPut(t, s, payload(1, 10))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(id, payload(1, 10)); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Get(id); err != ErrClosed {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}
