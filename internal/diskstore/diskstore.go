// Package diskstore implements a durable, log-structured chunk store
// behind the provider.Store + provider.LifecycleStore seam: append-only
// segment files of checksummed records, a sparse in-memory index
// ordered by chunk ID (so List pages at O(limit + log n), honouring the
// LifecycleStore ordered-iteration contract with what is logically a
// range scan), crash recovery by segment replay with torn-tail
// truncation, and a background compactor that rewrites segments whose
// live fraction drops below a threshold without blocking readers.
//
// Payloads are immutable once written (chunks are content-addressed),
// so reads never take the store mutex across I/O: the index lookup
// pins the segment with a reader count, the mutex is released, and the
// payload is served with one ReadAt. Only appends — which must
// serialize with index updates in log order — run under the mutex, and
// each such call site carries an audited lockio allow annotation.
//
// A TieredStore (tiered.go) composes the lock-striped in-memory
// MemStore as a bounded hot tier over this store as the cold source of
// truth.
package diskstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/chunk"
	"blobseer/internal/metrics"
	"blobseer/internal/provider"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("diskstore: store closed")

// Options configures a DiskStore. The zero value is usable.
type Options struct {
	// Capacity bounds live payload bytes (≤ 0 = unbounded), with the
	// same admission semantics as provider.MemStore.
	Capacity int64
	// SegmentBytes is the roll threshold for the active segment
	// (default 64 MiB). Tests use small values to force frequent rolls.
	SegmentBytes int64
	// CompactLiveFraction is the live-data fraction below which a
	// sealed segment becomes a compaction victim (default 0.5).
	CompactLiveFraction float64
	// CompactEvery is the background compactor's scan period (default
	// 2s; < 0 disables the background goroutine — CompactOnce still
	// works).
	CompactEvery time.Duration
	// SyncWrites fsyncs the active segment after every append. Off by
	// default: recovery truncates torn tails, and the compactor always
	// fsyncs before dropping a victim's old copies.
	SyncWrites bool
	// Metrics, when set, publishes append/read/compaction latency and
	// recovery-time series into the registry. Nil keeps the store
	// uninstrumented (no clock reads on the data path).
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactLiveFraction <= 0 {
		o.CompactLiveFraction = 0.5
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 2 * time.Second
	}
	return o
}

// entry is the index record for one live chunk.
type entry struct {
	seg      uint32 // segment holding the payload
	off      int64  // payload offset within that segment file
	size     int64  // payload bytes
	refs     int32
	epoch    uint64
	stateSeg uint32 // segment holding the latest authoritative record
}

// deadKey tracks a fully-deleted chunk whose payload record still
// exists in some live segment: the tombstone in tombSeg must outlive
// the payload record in putSeg, or replay would resurrect the chunk.
type deadKey struct {
	putSeg  uint32
	tombSeg uint32
}

// segment is one log file. livePayload and stateRecs are the
// compaction accounting: how many payload bytes and how many
// authoritative state records the segment still holds.
type segment struct {
	id   uint32
	path string
	w    *os.File // append handle; nil once sealed
	r    *os.File // shared read handle (pread only)
	size int64    // file bytes

	livePayload int64
	stateRecs   int64

	readers atomic.Int32
	dead    atomic.Bool
	reaped  atomic.Bool
}

// DiskStore is a log-structured, reference-counted chunk store over a
// directory of segment files. It implements provider.Store,
// provider.LifecycleStore and provider.BufferedGetter.
type DiskStore struct {
	dir  string
	opts Options

	used  atomic.Int64 // live payload bytes (each chunk once)
	count atomic.Int64
	epoch atomic.Uint64

	mu       sync.Mutex
	idx      map[chunk.ID]entry
	ord      provider.IDIndex
	segs     map[uint32]*segment
	active   *segment
	nextSeg  uint32
	deadKeys map[chunk.ID]deadKey
	closed   bool
	encBuf   []byte // append scratch, reused under mu

	kick  chan struct{}
	stopc chan struct{}
	wg    sync.WaitGroup

	m *storeMetrics // nil = uninstrumented
}

func segPath(dir string, id uint32) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", id))
}

// Open opens (or creates) a store in dir, replaying every segment to
// rebuild the index. A torn record at the tail of the youngest segment
// — the only place a crash can leave one — is truncated away; damage
// anywhere else fails the open with ErrCorrupt.
func Open(dir string, opts Options) (*DiskStore, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &DiskStore{
		dir:      dir,
		opts:     opts,
		idx:      make(map[chunk.ID]entry),
		segs:     make(map[uint32]*segment),
		deadKeys: make(map[chunk.ID]deadKey),
		kick:     make(chan struct{}, 1),
		stopc:    make(chan struct{}),
		m:        newStoreMetrics(opts.Metrics),
	}
	openStart := time.Now()
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var ids []uint32
	for _, de := range names {
		var id uint32
		if _, err := fmt.Sscanf(de.Name(), "%08d.seg", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if err := s.replaySegment(id, i == len(ids)-1); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	switch {
	case len(ids) == 0:
		if _, err := s.addSegment(); err != nil {
			s.closeFiles()
			return nil, err
		}
	default:
		// The youngest segment stays active: reopen its append handle
		// (replay already truncated any torn tail).
		last := s.segs[ids[len(ids)-1]]
		w, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("diskstore: reopen active: %w", err)
		}
		last.w = w
		s.active = last
		s.nextSeg = ids[len(ids)-1] + 1
	}
	if s.m != nil {
		s.m.recovery.Set(time.Since(openStart).Seconds())
		s.m.segments.Set(float64(len(s.segs)))
	}
	if opts.CompactEvery > 0 {
		s.wg.Add(1)
		go s.compactor()
	}
	return s, nil
}

// replaySegment streams one segment file, applying each verified
// record. tail marks the youngest segment, whose first damaged record
// is treated as a torn write and truncated away.
func (s *DiskStore) replaySegment(id uint32, tail bool) error {
	path := segPath(s.dir, id)
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	seg := &segment{id: id, path: path, r: r}
	s.segs[id] = seg
	if id >= s.nextSeg {
		s.nextSeg = id + 1
	}

	var off int64
	buf := make([]byte, headerSize, headerSize+64<<10)
	for {
		n, err := io.ReadFull(r, buf[:headerSize])
		if err == io.EOF {
			break
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			return fmt.Errorf("diskstore: read %s: %w", path, err)
		}
		torn := func(cause error) error {
			if !tail {
				return fmt.Errorf("diskstore: %s at offset %d: %w", path, off, cause)
			}
			// A torn tail: drop it and recover everything before it.
			if terr := os.Truncate(path, off); terr != nil {
				return fmt.Errorf("diskstore: truncate torn tail of %s: %w", path, terr)
			}
			return nil
		}
		if n < headerSize {
			return torn(fmt.Errorf("%w: short header", ErrCorrupt))
		}
		rec, payloadLen, err := decodeHeader(buf[:headerSize])
		if err != nil {
			return torn(err)
		}
		full := buf[:headerSize]
		if payloadLen > 0 {
			if cap(buf) < headerSize+payloadLen {
				nb := make([]byte, headerSize+payloadLen)
				copy(nb, buf[:headerSize])
				buf = nb
			}
			full = buf[:headerSize+payloadLen]
			if _, err := io.ReadFull(r, full[headerSize:]); err != nil {
				return torn(fmt.Errorf("%w: short payload", ErrCorrupt))
			}
		}
		if !verify(full) {
			return torn(fmt.Errorf("%w: checksum mismatch", ErrCorrupt))
		}
		rec.payload = full[headerSize : headerSize+payloadLen]
		s.apply(seg, off+headerSize, &rec)
		off += wireSize(payloadLen)
		seg.size = off
	}
	return nil
}

// apply folds one record into the index. Called single-threaded during
// replay and with mu held at runtime (after the record is appended), so
// both paths share one bookkeeping implementation. payloadOff is the
// payload's offset in seg's file. It returns the live payload bytes
// freed (non-zero only for a tombstone).
func (s *DiskStore) apply(seg *segment, payloadOff int64, rec *record) int64 {
	if e := rec.epoch; e > s.epoch.Load() {
		s.epoch.Store(e)
	}
	switch rec.typ {
	case recEpoch:
		return 0
	case recPut:
		size := int64(len(rec.payload))
		if old, ok := s.idx[rec.id]; ok {
			// A compaction rewrite (or replay of one): the payload
			// moves, the logical chunk does not.
			s.segRef(old.seg).livePayload -= old.size
			s.segRef(old.stateSeg).stateRecs--
			s.used.Add(size - old.size)
		} else {
			if dk, dead := s.deadKeys[rec.id]; dead {
				s.segRef(dk.tombSeg).stateRecs--
				delete(s.deadKeys, rec.id)
			}
			s.used.Add(size)
			s.count.Add(1)
			s.ord.Insert(rec.id)
		}
		seg.livePayload += size
		seg.stateRecs++
		s.idx[rec.id] = entry{
			seg: seg.id, off: payloadOff, size: size,
			refs: rec.refs, epoch: rec.epoch, stateSeg: seg.id,
		}
		return 0
	case recState:
		e, ok := s.idx[rec.id]
		if !ok {
			if rec.refs == 0 {
				// Tombstone for a chunk whose tombstone moved (or whose
				// payload segment is already gone): retarget or ignore.
				if dk, dead := s.deadKeys[rec.id]; dead {
					s.segRef(dk.tombSeg).stateRecs--
					dk.tombSeg = seg.id
					seg.stateRecs++
					s.deadKeys[rec.id] = dk
				}
			}
			return 0
		}
		if rec.refs > 0 {
			s.segRef(e.stateSeg).stateRecs--
			seg.stateRecs++
			e.refs, e.epoch, e.stateSeg = rec.refs, rec.epoch, seg.id
			s.idx[rec.id] = e
			return 0
		}
		// Delete-to-zero / purge: the chunk dies, the payload bytes
		// stay in their segment until compaction.
		s.segRef(e.stateSeg).stateRecs--
		s.segRef(e.seg).livePayload -= e.size
		s.used.Add(-e.size)
		s.count.Add(-1)
		s.ord.Remove(rec.id)
		delete(s.idx, rec.id)
		s.deadKeys[rec.id] = deadKey{putSeg: e.seg, tombSeg: seg.id}
		seg.stateRecs++
		return e.size
	}
	return 0
}

// segRef returns the live segment with the given id. By invariant the
// id always resolves (a segment is only dropped once no authoritative
// record references it); a throwaway is returned defensively so a
// violated invariant skews accounting instead of panicking.
func (s *DiskStore) segRef(id uint32) *segment {
	if seg, ok := s.segs[id]; ok {
		return seg
	}
	return &segment{}
}

// addSegment creates and activates the next segment file. Caller holds
// mu (or is the single-threaded Open path).
func (s *DiskStore) addSegment() (*segment, error) {
	id := s.nextSeg
	if id == 0 {
		id = 1
	}
	path := segPath(s.dir, id)
	w, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: create segment: %w", err)
	}
	r, err := os.Open(path)
	if err != nil {
		w.Close()
		return nil, fmt.Errorf("diskstore: open segment: %w", err)
	}
	seg := &segment{id: id, path: path, w: w, r: r}
	s.segs[id] = seg
	if s.active != nil && s.active.w != nil {
		s.active.w.Close()
		s.active.w = nil
	}
	s.active = seg
	s.nextSeg = id + 1
	if s.m != nil {
		s.m.segments.Set(float64(len(s.segs)))
	}
	return seg, nil
}

// appendLocked writes one record to the active segment and returns the
// segment it landed in and its payload offset. Caller holds mu: the
// append must serialize with the index update so memory state always
// matches log order. On a write error the partial record is truncated
// away so later appends cannot land misaligned.
func (s *DiskStore) appendLocked(rec *record) (*segment, int64, error) {
	seg := s.active
	s.encBuf = rec.encode(s.encBuf[:0])
	start := seg.size
	n, err := seg.w.Write(s.encBuf)
	if err != nil {
		if n > 0 {
			// Best effort: a failed truncate leaves a tail that replay
			// will cut at the same place.
			_ = seg.w.Truncate(start)
		}
		return nil, 0, fmt.Errorf("diskstore: append: %w", err)
	}
	seg.size += int64(n)
	if s.opts.SyncWrites {
		if err := seg.w.Sync(); err != nil {
			return nil, 0, fmt.Errorf("diskstore: sync: %w", err)
		}
	}
	if seg.size >= s.opts.SegmentBytes {
		// Roll after the write: records never straddle segments. A
		// failed roll keeps appending to the over-full segment.
		if _, err := s.addSegment(); err != nil {
			return seg, start + headerSize, err
		}
	}
	return seg, start + headerSize, nil
}

// Put stores data under id, or re-states an already-present chunk with
// one more reference and a refreshed epoch tag (content addressing
// makes replays idempotent). Implements provider.Store.
func (s *DiskStore) Put(id chunk.ID, data []byte) error {
	if s.m == nil {
		return s.put(id, data)
	}
	t0 := time.Now()
	err := s.put(id, data)
	s.m.since(s.m.appendDur, t0)
	return err
}

func (s *DiskStore) put(id chunk.ID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cur := s.epoch.Load()
	if e, ok := s.idx[id]; ok {
		rec := record{typ: recState, refs: e.refs + 1, epoch: cur, id: id}
		seg, off, err := s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
		if err != nil {
			return err
		}
		s.apply(seg, off, &rec)
		return nil
	}
	n := int64(len(data))
	if s.opts.Capacity > 0 && s.used.Load()+n > s.opts.Capacity {
		return provider.ErrFull
	}
	rec := record{typ: recPut, refs: 1, epoch: cur, id: id, payload: data}
	seg, off, err := s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
	if err != nil {
		return err
	}
	s.apply(seg, off, &rec)
	return nil
}

// Get returns a copy of the chunk payload.
func (s *DiskStore) Get(id chunk.ID) ([]byte, error) {
	return s.GetAppend(id, nil)
}

// GetAppend implements provider.BufferedGetter: the payload is read
// into dst[:0], reallocating only when dst is too small. The segment is
// pinned with a reader count while the mutex is released, so a
// concurrent compaction can unlink the file but never invalidate the
// read (the payload bytes at that offset are immutable).
func (s *DiskStore) GetAppend(id chunk.ID, dst []byte) ([]byte, error) {
	if s.m == nil {
		return s.getAppend(id, dst)
	}
	t0 := time.Now()
	out, err := s.getAppend(id, dst)
	s.m.since(s.m.readDur, t0)
	return out, err
}

func (s *DiskStore) getAppend(id chunk.ID, dst []byte) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := s.idx[id]
	if !ok {
		s.mu.Unlock()
		return nil, provider.ErrNotFound
	}
	seg := s.segs[e.seg]
	seg.readers.Add(1)
	s.mu.Unlock()
	defer s.release(seg)

	need := int(e.size)
	if cap(dst) < need {
		dst = make([]byte, need)
	} else {
		dst = dst[:need]
	}
	if _, err := seg.r.ReadAt(dst, e.off); err != nil {
		return nil, fmt.Errorf("diskstore: read chunk %s: %w", id.Short(), err)
	}
	return dst, nil
}

// release drops a segment reader pin, reaping the file if a compaction
// declared the segment dead while the read was in flight.
func (s *DiskStore) release(seg *segment) {
	if seg.readers.Add(-1) == 0 && seg.dead.Load() {
		s.reap(seg)
	}
}

// reap closes and unlinks a dead segment exactly once.
func (s *DiskStore) reap(seg *segment) {
	if !seg.reaped.CompareAndSwap(false, true) {
		return
	}
	seg.r.Close()
	_ = os.Remove(seg.path)
}

// Delete decrements the chunk's refcount, freeing it at zero. Implements
// provider.Store.
func (s *DiskStore) Delete(id chunk.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.idx[id]
	if !ok {
		return provider.ErrNotFound
	}
	refs := e.refs - 1
	if refs < 0 {
		refs = 0
	}
	rec := record{typ: recState, refs: refs, epoch: e.epoch, id: id}
	seg, off, err := s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
	if err != nil {
		return err
	}
	if s.apply(seg, off, &rec) > 0 {
		s.kickCompactor()
	}
	return nil
}

// Purge implements provider.LifecycleStore: the chunk is freed
// wholesale, whatever its reference count. Purging an absent chunk
// frees 0 bytes and is not an error.
func (s *DiskStore) Purge(id chunk.ID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	e, ok := s.idx[id]
	if !ok {
		return 0, nil
	}
	rec := record{typ: recState, refs: 0, epoch: e.epoch, id: id}
	seg, off, err := s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
	if err != nil {
		return 0, err
	}
	freed := s.apply(seg, off, &rec)
	if freed > 0 {
		s.kickCompactor()
	}
	return freed, nil
}

// List implements provider.LifecycleStore: one page costs
// O(limit + log n) against the always-sorted in-memory index — the
// disk is not touched at all, matching the ordered-iteration contract.
func (s *DiskStore) List(after chunk.ID, limit int) ([]provider.ChunkInfo, bool) {
	if limit <= 0 {
		limit = 1024
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := s.ord.Page(after, limit+1)
	more := len(ids) > limit
	if more {
		ids = ids[:limit]
	}
	out := make([]provider.ChunkInfo, len(ids))
	for i, id := range ids {
		e := s.idx[id]
		out[i] = provider.ChunkInfo{ID: id, Size: e.size, Refs: int(e.refs), Epoch: e.epoch}
	}
	return out, more
}

// Epoch implements provider.LifecycleStore.
func (s *DiskStore) Epoch() uint64 { return s.epoch.Load() }

// AdvanceEpoch implements provider.LifecycleStore. The new epoch is
// durable via a recEpoch record; if that append fails the advance still
// holds in memory — after a crash the epoch falls back to the highest
// tag on disk, which only widens the sweep grace window (the safe
// direction: chunks look newer, never older).
func (s *DiskStore) AdvanceEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.epoch.Add(1)
	if s.closed {
		return e
	}
	rec := record{typ: recEpoch, epoch: e}
	_, _, _ = s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
	return e
}

// Has reports whether the chunk is present.
func (s *DiskStore) Has(id chunk.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx[id]
	return ok
}

// Keys returns the stored chunk IDs in unspecified order.
func (s *DiskStore) Keys() []chunk.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]chunk.ID, 0, len(s.idx))
	for id := range s.idx {
		out = append(out, id)
	}
	return out
}

// Used returns live payload bytes (each chunk counted once).
func (s *DiskStore) Used() int64 { return s.used.Load() }

// Count returns the number of distinct live chunks.
func (s *DiskStore) Count() int { return int(s.count.Load()) }

// DiskUsage returns the total bytes of all segment files, live and
// garbage alike — the number compaction exists to bound.
func (s *DiskStore) DiskUsage() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// Segments returns the number of live segment files.
func (s *DiskStore) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// Sync flushes the active segment to stable storage.
func (s *DiskStore) Sync() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	w := s.active.w
	s.mu.Unlock()
	return w.Sync()
}

// Close stops the compactor and closes every file handle. Operations
// after Close fail with ErrClosed.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stopc)
	s.mu.Unlock()
	s.wg.Wait()
	// closed=true stops new operations and the compactor is drained, so
	// the handle set is frozen: snapshot it under the lock, close the
	// files outside it.
	s.mu.Lock()
	segs := make([]*segment, 0, len(s.segs))
	for _, seg := range s.segs {
		segs = append(segs, seg)
	}
	s.mu.Unlock()
	for _, seg := range segs {
		if seg.w != nil {
			seg.w.Close()
			seg.w = nil
		}
		seg.r.Close()
	}
	return nil
}

// closeFiles closes every segment handle. Caller holds mu or is the
// failed single-threaded Open path.
func (s *DiskStore) closeFiles() {
	for _, seg := range s.segs {
		if seg.w != nil {
			seg.w.Close()
			seg.w = nil
		}
		seg.r.Close()
	}
}
