// The background compactor. A sealed segment whose live fraction —
// live payload bytes plus the wire size of its authoritative state
// records, over its file size — falls below Options.CompactLiveFraction
// is a victim: everything authoritative still in it is re-recorded at
// the log head (live payloads as recPut with current absolute
// refs/epoch, payload-elsewhere state as recState, tombstones whose
// payload record still exists elsewhere as fresh tombstones), after
// which the file holds only superseded history and is dropped. Readers
// never block: a Get in flight holds a reader pin, so the file is
// unlinked but stays readable until the last pin drops.
//
// Absolute-state records make this safe without any delta reasoning: a
// replay that sees both the victim and its rewrites folds them in log
// order and the newer absolute records win; a replay after the drop
// sees only the rewrites. The one resurrection hazard — dropping a
// tombstone while the payload record it kills still exists in an older
// segment — is tracked explicitly (deadKeys) and the tombstone is
// re-recorded before its segment is dropped.
package diskstore

import (
	"fmt"
	"time"

	"blobseer/internal/chunk"
)

// kickCompactor nudges the background compactor without blocking.
func (s *DiskStore) kickCompactor() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// compactor is the background loop: a periodic scan, plus kicks from
// delete/purge paths that freed payload bytes.
func (s *DiskStore) compactor() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-t.C:
		case <-s.kick:
		}
		// Best effort: a failing disk surfaces on the write paths too,
		// and the next scan retries.
		_, _, _ = s.CompactOnce()
	}
}

// liveScore is the bytes a segment still holds that matter: live
// payloads plus the wire size of its authoritative metadata records.
func (seg *segment) liveScore() int64 {
	return seg.livePayload + seg.stateRecs*int64(headerSize)
}

// CompactOnce scans for victim segments and rewrites them, returning
// how many segments were dropped and the garbage bytes reclaimed. It is
// safe to call concurrently with all store operations (the background
// compactor uses it); tests and benchmarks call it directly.
func (s *DiskStore) CompactOnce() (dropped int, reclaimed int64, err error) {
	if s.m == nil {
		return s.compactOnce()
	}
	t0 := time.Now()
	dropped, reclaimed, err = s.compactOnce()
	s.m.since(s.m.compactDur, t0)
	s.m.segments.Set(float64(s.Segments()))
	return dropped, reclaimed, err
}

func (s *DiskStore) compactOnce() (dropped int, reclaimed int64, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, 0, ErrClosed
	}
	var victims []*segment
	for _, seg := range s.segs {
		if seg == s.active || seg.dead.Load() || seg.size == 0 {
			continue
		}
		if float64(seg.liveScore())/float64(seg.size) < s.opts.CompactLiveFraction {
			victims = append(victims, seg)
		}
	}
	s.mu.Unlock()
	for _, v := range victims {
		n, cerr := s.compactSegment(v)
		if cerr != nil {
			return dropped, reclaimed, cerr
		}
		dropped++
		reclaimed += n
	}
	return dropped, reclaimed, nil
}

// compactSegment rewrites everything authoritative out of v and drops
// it. Work proceeds chunk by chunk under short mutex slices, with the
// payload read running outside the lock against v's pinned read handle.
func (s *DiskStore) compactSegment(v *segment) (int64, error) {
	// Snapshot the work lists. Entries can change while we work — every
	// step re-verifies under the lock before acting.
	s.mu.Lock()
	var payloadIDs, stateIDs, tombIDs, forgetIDs []chunk.ID
	for id, e := range s.idx {
		switch {
		case e.seg == v.id:
			payloadIDs = append(payloadIDs, id)
		case e.stateSeg == v.id:
			stateIDs = append(stateIDs, id)
		}
	}
	for id, dk := range s.deadKeys {
		switch {
		case dk.putSeg == v.id:
			forgetIDs = append(forgetIDs, id)
		case dk.tombSeg == v.id:
			tombIDs = append(tombIDs, id)
		}
	}
	s.mu.Unlock()

	var buf []byte
	for _, id := range payloadIDs {
		var err error
		buf, err = s.relocatePayload(v, id, buf)
		if err != nil {
			return 0, err
		}
	}
	for _, id := range stateIDs {
		if err := s.restate(v, id); err != nil {
			return 0, err
		}
	}
	for _, id := range tombIDs {
		if err := s.rewriteTombstone(v, id); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	for _, id := range forgetIDs {
		// v holds these chunks' (dead) payload records: once v is gone
		// there is nothing left to resurrect, so the tombstone becomes
		// unnecessary and its key is forgotten.
		if dk, ok := s.deadKeys[id]; ok && dk.putSeg == v.id {
			s.segRef(dk.tombSeg).stateRecs--
			delete(s.deadKeys, id)
		}
	}
	clean := v.livePayload == 0 && v.stateRecs == 0
	w := s.active.w
	s.mu.Unlock()
	if !clean {
		// Something raced in (it cannot: v is sealed and every path
		// appends to the active segment — but stay safe and retry on a
		// later scan rather than drop authoritative records).
		return 0, nil
	}
	// The rewrites must be durable before the only other copy vanishes.
	if err := w.Sync(); err != nil {
		return 0, fmt.Errorf("diskstore: compact sync: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	size := v.size
	v.dead.Store(true)
	delete(s.segs, v.id)
	s.mu.Unlock()
	if v.readers.Load() == 0 {
		s.reap(v)
	}
	return size, nil
}

// relocatePayload moves one live payload out of v: read outside the
// lock (the bytes are immutable), then re-verify and append a recPut
// with the chunk's current absolute refs/epoch.
func (s *DiskStore) relocatePayload(v *segment, id chunk.ID, buf []byte) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.idx[id]
	if !ok || e.seg != v.id {
		s.mu.Unlock()
		return buf, nil // deleted or already moved
	}
	v.readers.Add(1)
	off, size := e.off, e.size
	s.mu.Unlock()

	if cap(buf) < int(size) {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	_, rerr := v.r.ReadAt(buf, off)
	s.release(v)
	if rerr != nil {
		return buf, fmt.Errorf("diskstore: compact read: %w", rerr)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return buf, ErrClosed
	}
	e, ok = s.idx[id]
	if !ok || e.seg != v.id {
		return buf, nil // raced away while we read: nothing to move
	}
	rec := record{typ: recPut, refs: e.refs, epoch: e.epoch, id: id, payload: buf}
	seg, poff, err := s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
	if err != nil {
		return buf, err
	}
	s.apply(seg, poff, &rec)
	return buf, nil
}

// restate re-records a chunk whose payload lives elsewhere but whose
// latest authoritative state record sits in v.
func (s *DiskStore) restate(v *segment, id chunk.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.idx[id]
	if !ok || e.stateSeg != v.id || e.seg == v.id {
		return nil
	}
	rec := record{typ: recState, refs: e.refs, epoch: e.epoch, id: id}
	seg, off, err := s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
	if err != nil {
		return err
	}
	s.apply(seg, off, &rec)
	return nil
}

// rewriteTombstone re-records a dead chunk's tombstone when the payload
// record it kills still exists in another live segment.
func (s *DiskStore) rewriteTombstone(v *segment, id chunk.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	dk, ok := s.deadKeys[id]
	if !ok || dk.tombSeg != v.id {
		return nil // resurrected by a fresh Put, or already moved
	}
	if _, alive := s.segs[dk.putSeg]; !alive || dk.putSeg == v.id {
		// Nothing left to resurrect: drop the key instead.
		s.segRef(dk.tombSeg).stateRecs--
		delete(s.deadKeys, id)
		return nil
	}
	rec := record{typ: recState, refs: 0, epoch: 0, id: id}
	seg, off, err := s.appendLocked(&rec) //lockio:allow append-only log: appends must serialize with index updates in log order; payload reads run outside this mutex
	if err != nil {
		return err
	}
	s.apply(seg, off, &rec)
	return nil
}
