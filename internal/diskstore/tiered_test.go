package diskstore

import (
	"bytes"
	"sync"
	"testing"

	"blobseer/internal/chunk"
	"blobseer/internal/provider"
)

func openTiered(t *testing.T, hotBytes int64) *TieredStore {
	t.Helper()
	cold, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTiered(cold, hotBytes)
	t.Cleanup(func() { ts.Close() })
	return ts
}

func TestTieredWriteThroughAndPromote(t *testing.T) {
	ts := openTiered(t, 1<<20)
	data := payload(100, 4096)
	id := mustPut(t, ts, data)
	if ts.HotUsed() != 4096 {
		t.Fatalf("HotUsed=%d after Put, want 4096 (write-through caches)", ts.HotUsed())
	}
	if ts.Cold().Used() != 4096 {
		t.Fatal("cold tier missed the write-through")
	}
	got, err := ts.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get: %v", err)
	}

	// Evict by hand, then a Get must fall through cold and re-promote.
	ts.drop(id)
	if ts.HotUsed() != 0 {
		t.Fatal("drop did not empty the cache")
	}
	got, err = ts.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cold Get: %v", err)
	}
	if ts.HotUsed() != 4096 {
		t.Fatalf("HotUsed=%d after cold Get, want 4096 (promote-on-Get)", ts.HotUsed())
	}
}

func TestTieredEvictionBound(t *testing.T) {
	ts := openTiered(t, 1000)
	var ids []chunk.ID
	for i := 0; i < 10; i++ {
		ids = append(ids, mustPut(t, ts, payload(200+i, 300)))
	}
	if hu := ts.HotUsed(); hu > 1000 {
		t.Fatalf("HotUsed=%d exceeds 1000-byte bound", hu)
	}
	// The cold tier holds everything regardless.
	if ts.Count() != 10 || ts.Used() != 3000 {
		t.Fatalf("cold Count=%d Used=%d, want 10/3000", ts.Count(), ts.Used())
	}
	// Evicted chunks still readable (cold), recent ones hot.
	for i, id := range ids {
		got, err := ts.Get(id)
		if err != nil || !bytes.Equal(got, payload(200+i, 300)) {
			t.Fatalf("chunk %d unreadable through tiering: %v", i, err)
		}
	}
	// Oversized chunk: stored cold, never cached.
	big := payload(999, 2000)
	mustPut(t, ts, big)
	if hu := ts.HotUsed(); hu > 1000 {
		t.Fatalf("oversized chunk entered the %d-byte cache (HotUsed=%d)", 1000, hu)
	}
	if got, err := ts.Get(chunk.Sum(big)); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("oversized chunk unreadable: %v", err)
	}
}

func TestTieredDeletePurgeDropHotCopy(t *testing.T) {
	ts := openTiered(t, 1<<20)
	d := payload(300, 500)
	id := mustPut(t, ts, d)
	mustPut(t, ts, d) // refs=2
	if err := ts.Delete(id); err != nil {
		t.Fatal(err)
	}
	if ts.HotUsed() != 500 {
		t.Fatal("refs=1 chunk evicted prematurely")
	}
	if err := ts.Delete(id); err != nil {
		t.Fatal(err)
	}
	if ts.HotUsed() != 0 || ts.Has(id) {
		t.Fatalf("freed chunk lingers: hot=%d has=%v", ts.HotUsed(), ts.Has(id))
	}
	if _, err := ts.Get(id); err != provider.ErrNotFound {
		t.Fatalf("Get deleted = %v, want ErrNotFound", err)
	}

	id2 := mustPut(t, ts, payload(301, 500))
	mustPut(t, ts, payload(301, 500))
	if freed, err := ts.Purge(id2); err != nil || freed != 500 {
		t.Fatalf("Purge = (%d, %v)", freed, err)
	}
	if ts.HotUsed() != 0 || ts.Has(id2) {
		t.Fatal("purged chunk lingers in the hot tier")
	}
}

func TestTieredLifecycleDelegatesToCold(t *testing.T) {
	ts := openTiered(t, 1<<20)
	for i := 0; i < 20; i++ {
		mustPut(t, ts, payload(400+i, 100))
	}
	if ts.Epoch() != 0 {
		t.Fatal("fresh epoch != 0")
	}
	if e := ts.AdvanceEpoch(); e != 1 || ts.Cold().Epoch() != 1 {
		t.Fatalf("AdvanceEpoch=%d cold=%d, want 1/1", e, ts.Cold().Epoch())
	}
	got := listAll(ts)
	want := listAll(ts.Cold())
	if len(got) != 20 || len(got) != len(want) {
		t.Fatalf("List lengths: tiered=%d cold=%d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("tiered List diverges from cold List")
		}
	}
	if len(ts.Keys()) != 20 {
		t.Fatal("Keys must reflect the cold tier")
	}
}

func TestTieredConcurrentChurn(t *testing.T) {
	ts := openTiered(t, 8<<10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := payload(w*10000+i%37, 256)
				id := chunk.Sum(d)
				switch i % 4 {
				case 0, 1:
					if err := ts.Put(id, d); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 2:
					if got, err := ts.Get(id); err == nil && !bytes.Equal(got, d) {
						t.Error("Get returned wrong bytes")
						return
					}
				default:
					_, _ = ts.Purge(id)
				}
			}
		}(w)
	}
	wg.Wait()
	// Cache coherence: every hot chunk must still exist cold, byte-equal.
	ts.hmu.Lock()
	var hotIDs []chunk.ID
	for id := range ts.ent {
		hotIDs = append(hotIDs, id)
	}
	ts.hmu.Unlock()
	for _, id := range hotIDs {
		if !ts.Cold().Has(id) {
			continue // raced with a purge after snapshot; fine
		}
		hot, ok := ts.hotGet(id, nil)
		if !ok {
			continue
		}
		cold, err := ts.Cold().Get(id)
		if err == nil && !bytes.Equal(hot, cold) {
			t.Fatal("hot copy diverges from cold source of truth")
		}
	}
}
