package vmanager

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"blobseer/internal/blobmeta"
	"blobseer/internal/chunk"
	"blobseer/internal/instrument"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	return New(blobmeta.NewMemStore("m1", nil, nil), WithSpan(1024))
}

func desc(tag string) chunk.Desc {
	return chunk.Desc{ID: chunk.Sum([]byte(tag)), Size: int64(len(tag)), Providers: []string{"p1"}}
}

func TestCreateAndInfo(t *testing.T) {
	m := newMgr(t)
	info, err := m.Create("alice", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != 1 || info.Owner != "alice" || info.ChunkSize != 64 {
		t.Fatalf("info=%+v", info)
	}
	got, err := m.Info(info.ID)
	if err != nil || got.ID != info.ID {
		t.Fatalf("Info: %+v %v", got, err)
	}
	if _, err := m.Info(99); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("want ErrNoBlob, got %v", err)
	}
}

func TestCreateDefaultChunkSize(t *testing.T) {
	m := newMgr(t)
	info, err := m.Create("a", 0, false)
	if err != nil || info.ChunkSize != chunk.DefaultSize {
		t.Fatalf("info=%+v err=%v", info, err)
	}
}

func TestWritePublishRead(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("alice", 64, false)
	tk, err := m.AssignWrite(info.ID, "alice", 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Version != 1 || tk.Offset != 0 || tk.ChunkSize != 64 {
		t.Fatalf("ticket=%+v", tk)
	}
	err = m.Publish(info.ID, tk.Version, "alice", map[int64]chunk.Desc{0: desc("c0"), 1: desc("c1")})
	if err != nil {
		t.Fatal(err)
	}
	latest, err := m.Latest(info.ID)
	if err != nil || latest.Version != 1 || latest.Size != 128 {
		t.Fatalf("latest=%+v err=%v", latest, err)
	}
	tree, err := m.Tree(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := tree.Read(1, 0, 2)
	if err != nil || ds[0].ID != desc("c0").ID || ds[1].ID != desc("c1").ID {
		t.Fatalf("read: %v %v", ds, err)
	}
}

func TestOutOfOrderPublish(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	t1, _ := m.AssignWrite(info.ID, "a", 0, 64)
	t2, _ := m.AssignWrite(info.ID, "b", 64, 64)
	t3, _ := m.AssignWrite(info.ID, "c", 128, 64)

	// Publish 3 and 2 first: nothing visible until 1 lands.
	if err := m.Publish(info.ID, t3.Version, "c", map[int64]chunk.Desc{2: desc("c2")}); err != nil {
		t.Fatal(err)
	}
	if err := m.Publish(info.ID, t2.Version, "b", map[int64]chunk.Desc{1: desc("c1")}); err != nil {
		t.Fatal(err)
	}
	latest, _ := m.Latest(info.ID)
	if latest.Version != 0 {
		t.Fatalf("premature visibility: latest=%+v", latest)
	}
	if err := m.Publish(info.ID, t1.Version, "a", map[int64]chunk.Desc{0: desc("c0")}); err != nil {
		t.Fatal(err)
	}
	latest, _ = m.Latest(info.ID)
	if latest.Version != 3 || latest.Size != 192 {
		t.Fatalf("after drain: latest=%+v", latest)
	}
}

func TestAppendResolvesDisjointOffsets(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	t1, err := m.AssignAppend(info.ID, "u1", 100)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.AssignAppend(info.ID, "u2", 50)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Offset != 0 || t2.Offset != 100 {
		t.Fatalf("append offsets: %d %d", t1.Offset, t2.Offset)
	}
	// A write that does not extend the tail must not move appends back.
	if _, err := m.AssignWrite(info.ID, "u3", 0, 10); err != nil {
		t.Fatal(err)
	}
	t4, _ := m.AssignAppend(info.ID, "u4", 1)
	if t4.Offset != 150 {
		t.Fatalf("tail after small overwrite: %d", t4.Offset)
	}
}

func TestPublishValidation(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	if err := m.Publish(info.ID, 1, "a", nil); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("unassigned publish: %v", err)
	}
	tk, _ := m.AssignWrite(info.ID, "a", 0, 64)
	if err := m.Publish(info.ID, tk.Version, "a", nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Publish(info.ID, tk.Version, "a", nil); !errors.Is(err, ErrDoublePublish) {
		t.Fatalf("double publish: %v", err)
	}
	if err := m.Publish(99, 1, "a", nil); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("publish to unknown blob: %v", err)
	}
	// queued duplicate
	a, _ := m.AssignWrite(info.ID, "a", 0, 64)
	b, _ := m.AssignWrite(info.ID, "a", 0, 64)
	_ = a
	if err := m.Publish(info.ID, b.Version, "a", nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Publish(info.ID, b.Version, "a", nil); !errors.Is(err, ErrDoublePublish) {
		t.Fatalf("queued double publish: %v", err)
	}
}

func TestAbortUnblocksChain(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	t1, _ := m.AssignWrite(info.ID, "dead", 0, 64)
	t2, _ := m.AssignWrite(info.ID, "live", 64, 64)
	if err := m.Publish(info.ID, t2.Version, "live", map[int64]chunk.Desc{1: desc("x")}); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(info.ID, t1.Version); err != nil {
		t.Fatal(err)
	}
	latest, _ := m.Latest(info.ID)
	if latest.Version != 2 {
		t.Fatalf("latest=%+v", latest)
	}
	// Aborted write contributes no size.
	v1, _ := m.Version(info.ID, 1)
	if v1.Size != 0 {
		t.Fatalf("aborted version size=%d", v1.Size)
	}
}

func TestVersionsAndPending(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	t1, _ := m.AssignWrite(info.ID, "a", 0, 64)
	if n, _ := m.PendingCount(info.ID); n != 1 {
		t.Fatalf("pending=%d", n)
	}
	if err := m.Publish(info.ID, t1.Version, "a", map[int64]chunk.Desc{0: desc("a")}); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.PendingCount(info.ID); n != 0 {
		t.Fatalf("pending=%d", n)
	}
	vs, err := m.Versions(info.ID)
	if err != nil || len(vs) != 2 { // v0 + v1
		t.Fatalf("versions=%v err=%v", vs, err)
	}
	if _, err := m.Version(info.ID, 9); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestNegativeArgs(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	if _, err := m.AssignWrite(info.ID, "a", -1, 10); err == nil {
		t.Fatal("want error for negative offset")
	}
	if _, err := m.AssignWrite(info.ID, "a", 0, -1); err == nil {
		t.Fatal("want error for negative length")
	}
	if _, err := m.AssignAppend(info.ID, "a", -1); err == nil {
		t.Fatal("want error for negative append length")
	}
}

func TestDelete(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	t1, _ := m.AssignWrite(info.ID, "a", 0, 128)
	if err := m.Publish(info.ID, t1.Version, "a",
		map[int64]chunk.Desc{0: desc("c0"), 1: desc("c1")}); err != nil {
		t.Fatal(err)
	}
	descs, err := m.Delete(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 2 {
		t.Fatalf("reclaim set=%d", len(descs))
	}
	if _, err := m.Info(info.ID); !errors.Is(err, ErrDeleted) {
		t.Fatalf("want ErrDeleted, got %v", err)
	}
	if _, err := m.Latest(info.ID); !errors.Is(err, ErrDeleted) {
		t.Fatalf("want ErrDeleted, got %v", err)
	}
	ids := m.Blobs()
	if len(ids) != 0 {
		t.Fatalf("blobs=%v", ids)
	}
}

func TestBlobsSorted(t *testing.T) {
	m := newMgr(t)
	for i := 0; i < 5; i++ {
		if _, err := m.Create(fmt.Sprintf("u%d", i), 64, false); err != nil {
			t.Fatal(err)
		}
	}
	ids := m.Blobs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("unsorted: %v", ids)
		}
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk, err := m.AssignAppend(info.ID, fmt.Sprintf("u%d", w), 64)
			if err != nil {
				errs <- err
				return
			}
			idx := tk.Offset / 64
			errs <- m.Publish(info.ID, tk.Version, "", map[int64]chunk.Desc{idx: desc(fmt.Sprintf("w%d", w))})
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	latest, _ := m.Latest(info.ID)
	if latest.Version != writers || latest.Size != writers*64 {
		t.Fatalf("latest=%+v", latest)
	}
	// Every chunk slot must be filled: appends got disjoint offsets.
	tree, _ := m.Tree(info.ID)
	ds, err := tree.Read(latest.Version, 0, writers)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if d.ID.IsZero() {
			t.Fatalf("hole at slot %d after %d appends", i, writers)
		}
	}
}

func TestEventsEmitted(t *testing.T) {
	rec := &instrument.Recorder{}
	m := New(blobmeta.NewMemStore("m1", nil, nil), WithSpan(64), WithEmitter(rec))
	info, _ := m.Create("a", 64, false)
	tk, _ := m.AssignWrite(info.ID, "a", 0, 64)
	if err := m.Publish(info.ID, tk.Version, "a", map[int64]chunk.Desc{0: desc("x")}); err != nil {
		t.Fatal(err)
	}
	want := map[instrument.Op]bool{}
	for _, e := range rec.Events() {
		want[e.Op] = true
	}
	for _, op := range []instrument.Op{instrument.OpCreate, instrument.OpAssign, instrument.OpPublish} {
		if !want[op] {
			t.Errorf("missing event %s", op)
		}
	}
}

// TestDeleteDedupsByChunkID pins Delete's documented behavior: the
// reclaim set is deduplicated by chunk ID, so slots repeating the same
// content — within one version or across versions — appear once. Callers
// needing per-slot exactness use DeleteExact.
func TestDeleteDedupsByChunkID(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	t1, _ := m.AssignWrite(info.ID, "a", 0, 128)
	// Two slots, identical content: one Desc after dedup.
	if err := m.Publish(info.ID, t1.Version, "a",
		map[int64]chunk.Desc{0: desc("same"), 1: desc("same")}); err != nil {
		t.Fatal(err)
	}
	t2, _ := m.AssignWrite(info.ID, "a", 0, 64)
	// A second version rewrites slot 0 with the same content again.
	if err := m.Publish(info.ID, t2.Version, "a",
		map[int64]chunk.Desc{0: desc("same")}); err != nil {
		t.Fatal(err)
	}
	descs, err := m.Delete(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 {
		t.Fatalf("dedup reclaim set = %d descs, want 1", len(descs))
	}
}

// TestDeleteExactPerSlot: DeleteExact returns per-version per-slot
// descriptors, so repeated content appears once per slot and a
// single-version caller can balance refcounts exactly.
func TestDeleteExactPerSlot(t *testing.T) {
	m := newMgr(t)
	info, _ := m.Create("a", 64, false)
	t1, _ := m.AssignWrite(info.ID, "a", 0, 128)
	if err := m.Publish(info.ID, t1.Version, "a",
		map[int64]chunk.Desc{0: desc("same"), 1: desc("same")}); err != nil {
		t.Fatal(err)
	}
	t2, _ := m.AssignWrite(info.ID, "a", 128, 64)
	if err := m.Publish(info.ID, t2.Version, "a",
		map[int64]chunk.Desc{2: desc("tail")}); err != nil {
		t.Fatal(err)
	}
	vs, err := m.DeleteExact(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("versions = %d, want 2", len(vs))
	}
	if vs[0].Version != 1 || len(vs[0].Slots) != 2 {
		t.Fatalf("v1 = %+v, want 2 slots (repeated content kept per slot)", vs[0])
	}
	if vs[0].Slots[0].ID != vs[0].Slots[1].ID {
		t.Fatal("v1 slots should repeat the same chunk ID")
	}
	// v2 inherits v1's two slots and adds one.
	if vs[1].Version != 2 || len(vs[1].Slots) != 3 {
		t.Fatalf("v2 = %+v, want 3 slots", vs[1])
	}
	if _, err := m.Info(info.ID); !errors.Is(err, ErrDeleted) {
		t.Fatalf("want ErrDeleted, got %v", err)
	}
	if _, err := m.DeleteExact(info.ID); !errors.Is(err, ErrDeleted) {
		t.Fatalf("double DeleteExact: want ErrDeleted, got %v", err)
	}
}

// TestRetentionCandidatesAndRetire covers the policy evaluation and the
// retire operation's guard rails.
func TestRetentionCandidatesAndRetire(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	m := New(blobmeta.NewMemStore("m1", nil, nil), WithSpan(1024),
		WithClock(func() time.Time { return now }))
	info, _ := m.Create("a", 64, false)
	for i := 0; i < 4; i++ {
		tk, _ := m.AssignWrite(info.ID, "a", 0, 64)
		if err := m.Publish(info.ID, tk.Version, "a",
			map[int64]chunk.Desc{0: desc(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Minute)
	}

	// No policy: no candidates.
	cands, err := m.RetentionCandidates(info.ID, now)
	if err != nil || cands != nil {
		t.Fatalf("no-policy candidates = %v, %v", cands, err)
	}

	if err := m.SetRetention(info.ID, Retention{KeepLast: 2}); err != nil {
		t.Fatal(err)
	}
	if r, _ := m.RetentionOf(info.ID); r.KeepLast != 2 {
		t.Fatalf("retention = %+v", r)
	}
	cands, err = m.RetentionCandidates(info.ID, now)
	if err != nil || len(cands) != 2 || cands[0] != 1 || cands[1] != 2 {
		t.Fatalf("keep-last candidates = %v, %v", cands, err)
	}

	// Max-age nominates everything older than the cutoff except latest.
	if err := m.SetRetention(info.ID, Retention{MaxAge: 90 * time.Second}); err != nil {
		t.Fatal(err)
	}
	cands, err = m.RetentionCandidates(info.ID, now)
	if err != nil || len(cands) != 3 {
		t.Fatalf("max-age candidates = %v, %v", cands, err)
	}

	// Guard rails: the latest version and unknown versions refuse.
	if _, err := m.RetireVersions(info.ID, []uint64{4}); !errors.Is(err, ErrRetireLatest) {
		t.Fatalf("retire latest: %v", err)
	}
	if _, err := m.RetireVersions(info.ID, []uint64{99}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("retire unknown: %v", err)
	}
	// A bad entry poisons the whole batch.
	if _, err := m.RetireVersions(info.ID, []uint64{1, 99}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("poisoned batch: %v", err)
	}
	if _, err := m.Version(info.ID, 1); err != nil {
		t.Fatalf("v1 must survive the failed batch: %v", err)
	}

	n, err := m.RetireVersions(info.ID, []uint64{1, 2})
	if err != nil || n != 2 {
		t.Fatalf("retire = %d, %v", n, err)
	}
	if _, err := m.Version(info.ID, 1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("retired version readable: %v", err)
	}
	if vm, err := m.Latest(info.ID); err != nil || vm.Version != 4 {
		t.Fatalf("latest after retire = %+v, %v", vm, err)
	}
	// Versions lists only the retained ones (plus the v0 sentinel).
	vers, _ := m.Versions(info.ID)
	if len(vers) != 3 {
		t.Fatalf("versions after retire = %v", vers)
	}
}

// TestDeletedBlobsAndForget covers the node sweep's bookkeeping surface:
// deleted BLOBs stay listed until Forget, live BLOBs refuse to be
// forgotten, and MetaStore exposes the tree persistence.
func TestDeletedBlobsAndForget(t *testing.T) {
	store := blobmeta.NewMemStore("m1", nil, nil)
	m := New(store, WithSpan(64))
	if m.MetaStore() != blobmeta.Store(store) {
		t.Fatal("MetaStore does not expose the backing store")
	}
	a, _ := m.Create("u", 64, false)
	b, _ := m.Create("u", 64, false)
	if got := m.DeletedBlobs(); len(got) != 0 {
		t.Fatalf("deleted before any delete = %v", got)
	}
	if err := m.Forget(a.ID); err == nil {
		t.Fatal("forgetting a live blob must refuse")
	}
	if _, err := m.DeleteExact(a.ID); err != nil {
		t.Fatal(err)
	}
	if got := m.DeletedBlobs(); len(got) != 1 || got[0] != a.ID {
		t.Fatalf("deleted = %v, want [%d]", got, a.ID)
	}
	if got := m.Blobs(); len(got) != 1 || got[0] != b.ID {
		t.Fatalf("live = %v, want [%d]", got, b.ID)
	}
	if err := m.Forget(a.ID); err != nil {
		t.Fatal(err)
	}
	if got := m.DeletedBlobs(); len(got) != 0 {
		t.Fatalf("deleted after forget = %v", got)
	}
	// Idempotent: a sweep may retry.
	if err := m.Forget(a.ID); err != nil {
		t.Fatalf("second forget: %v", err)
	}
}

// TestHoldVersionBlocksRetire: a held version is atomically protected
// from retirement — RetireVersions skips it while any hold is
// outstanding and retires it once the last hold drains; holding a
// version that was already retired (or never existed) fails.
func TestHoldVersionBlocksRetire(t *testing.T) {
	m := New(blobmeta.NewMemStore("m1", nil, nil), WithSpan(1024))
	info, _ := m.Create("a", 64, false)
	for i := 0; i < 3; i++ {
		tk, _ := m.AssignWrite(info.ID, "a", 0, 64)
		if err := m.Publish(info.ID, tk.Version, "a",
			map[int64]chunk.Desc{0: desc(fmt.Sprintf("h%d", i))}); err != nil {
			t.Fatal(err)
		}
	}

	// Two holds stack on v1.
	if err := m.HoldVersion(info.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.HoldVersion(info.ID, 1); err != nil {
		t.Fatal(err)
	}

	// The batch retires only the unheld version; the held one is
	// silently skipped, not an error (retention retries it later).
	retired, err := m.RetireVersions(info.ID, []uint64{1, 2})
	if err != nil || retired != 1 {
		t.Fatalf("retire with hold = %d, %v, want 1 (v2 only)", retired, err)
	}
	if _, err := m.Version(info.ID, 1); err != nil {
		t.Fatalf("held version gone after retire batch: %v", err)
	}

	// One release is not enough; the second drains the hold.
	m.ReleaseVersion(info.ID, 1)
	if retired, _ := m.RetireVersions(info.ID, []uint64{1}); retired != 0 {
		t.Fatalf("retired %d versions with a hold still outstanding", retired)
	}
	m.ReleaseVersion(info.ID, 1)
	retired, err = m.RetireVersions(info.ID, []uint64{1})
	if err != nil || retired != 1 {
		t.Fatalf("retire after drain = %d, %v, want 1", retired, err)
	}

	// Hold-vs-retire atomicity from the loser's side: the version is
	// gone, so the hold must fail rather than register uselessly.
	if err := m.HoldVersion(info.ID, 1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("hold of retired version: %v", err)
	}
	// Releasing versions of unknown blobs is a tolerated no-op (the
	// blob may have been deleted under the writer).
	m.ReleaseVersion(999, 1)
}
