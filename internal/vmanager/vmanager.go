// Package vmanager implements BlobSeer's version manager: the actor that
// serializes concurrent write requests and publishes a new BLOB version
// for each write or append.
//
// The protocol mirrors BlobSeer's: a writer first asks for a version
// ticket (Assign), then transfers its chunks to data providers in
// parallel, and finally submits the chunk descriptors (Publish). The
// version manager applies publications strictly in version order, so a
// version becomes visible only after all its predecessors, which yields
// total-order snapshot semantics without blocking readers.
package vmanager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blobseer/internal/blobmeta"
	"blobseer/internal/chunk"
	"blobseer/internal/instrument"
)

// Errors returned by the version manager.
var (
	ErrNoBlob        = errors.New("vmanager: unknown blob")
	ErrBadVersion    = errors.New("vmanager: version was never assigned")
	ErrDoublePublish = errors.New("vmanager: version already published or pending")
	ErrDeleted       = errors.New("vmanager: blob deleted")
	ErrRetireLatest  = errors.New("vmanager: cannot retire the latest version")
)

// Retention is a per-BLOB version-retention policy, evaluated by the
// garbage collector. The zero value keeps every version forever (the
// classic BlobSeer model). Each knob independently nominates candidates:
// KeepLast > 0 nominates everything beyond the newest N published
// versions, MaxAge > 0 nominates versions published longer ago than
// MaxAge. The latest published version is never nominated.
type Retention struct {
	KeepLast int           // keep at most the newest N published versions (0 = all)
	MaxAge   time.Duration // retire versions older than this (0 = no age bound)
}

// zero reports whether the policy retains everything.
func (r Retention) zero() bool { return r.KeepLast <= 0 && r.MaxAge <= 0 }

// BlobInfo describes a BLOB.
type BlobInfo struct {
	ID        uint64
	Owner     string
	ChunkSize int64
	Created   time.Time
	Temporary bool // candidate for the "temporary data" removal strategy
}

// VersionMeta describes one published version.
type VersionMeta struct {
	Version   uint64
	Size      int64 // BLOB size as of this version
	Writer    string
	Published time.Time
}

// Ticket is a write admission: the assigned version, the offset the write
// lands at (resolved for appends) and the BLOB's chunk size.
type Ticket struct {
	Blob      uint64
	Version   uint64
	Offset    int64
	ChunkSize int64
}

type pendingPub struct {
	writes map[int64]chunk.Desc
	writer string
}

type blobState struct {
	info      BlobInfo
	tree      *blobmeta.Tree
	nextVer   uint64           // next version to assign (first assigned is 1)
	applied   uint64           // highest published (contiguous) version
	tail      int64            // end offset over all *assigned* writes
	ends      map[uint64]int64 // assigned version -> end offset of its write
	queued    map[uint64]pendingPub
	versions  map[uint64]VersionMeta
	holds     map[uint64]int // version -> writer-lease hold count
	retention Retention
	deleted   bool
}

// Manager is the version-manager actor.
type Manager struct {
	mu       sync.Mutex
	store    blobmeta.Store
	span     int64
	emit     instrument.Emitter
	now      func() time.Time
	nextBlob uint64
	blobs    map[uint64]*blobState
}

// Option configures a Manager.
type Option func(*Manager)

// WithEmitter attaches instrumentation.
func WithEmitter(e instrument.Emitter) Option {
	return func(m *Manager) {
		if e != nil {
			m.emit = e
		}
	}
}

// WithClock overrides the time source.
func WithClock(now func() time.Time) Option {
	return func(m *Manager) {
		if now != nil {
			m.now = now
		}
	}
}

// WithSpan overrides the metadata-tree span (testing).
func WithSpan(span int64) Option {
	return func(m *Manager) { m.span = span }
}

// New returns a version manager persisting metadata into store.
func New(store blobmeta.Store, opts ...Option) *Manager {
	m := &Manager{
		store: store,
		emit:  instrument.Nop{},
		now:   time.Now,
		blobs: make(map[uint64]*blobState),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Create registers a new BLOB and returns its description.
func (m *Manager) Create(owner string, chunkSize int64, temporary bool) (BlobInfo, error) {
	if chunkSize <= 0 {
		chunkSize = chunk.DefaultSize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextBlob++
	id := m.nextBlob
	tree, err := blobmeta.NewTree(m.store, id, m.span)
	if err != nil {
		return BlobInfo{}, err
	}
	info := BlobInfo{ID: id, Owner: owner, ChunkSize: chunkSize, Created: m.now(), Temporary: temporary}
	m.blobs[id] = &blobState{
		info:     info,
		tree:     tree,
		nextVer:  1,
		ends:     make(map[uint64]int64),
		queued:   make(map[uint64]pendingPub),
		versions: map[uint64]VersionMeta{0: {Version: 0, Published: info.Created}},
	}
	m.emit.Emit(instrument.Event{
		Time: m.now(), Actor: instrument.ActorVManager, User: owner,
		Op: instrument.OpCreate, Blob: id,
	})
	return info, nil
}

func (m *Manager) state(blob uint64) (*blobState, error) {
	st, ok := m.blobs[blob]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoBlob, blob)
	}
	if st.deleted {
		return nil, fmt.Errorf("%w: %d", ErrDeleted, blob)
	}
	return st, nil
}

// Info returns the BLOB description.
func (m *Manager) Info(blob uint64) (BlobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return BlobInfo{}, err
	}
	return st.info, nil
}

// Blobs lists live BLOB IDs in ascending order.
func (m *Manager) Blobs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.blobs))
	for id, st := range m.blobs {
		if !st.deleted {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeletedBlobs lists BLOBs marked deleted but not yet forgotten, in
// ascending order. Their metadata-tree nodes are still in the metadata
// store; the garbage collector's node sweep reclaims them and then
// calls Forget.
func (m *Manager) DeletedBlobs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0)
	for id, st := range m.blobs {
		if st.deleted {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Forget drops a deleted BLOB's bookkeeping entirely, ending its
// DeletedBlobs listing. Only the garbage collector calls it, after the
// BLOB's tree nodes have been reclaimed. Forgetting a live BLOB is
// refused; forgetting an unknown one is a no-op (sweeps may retry).
func (m *Manager) Forget(blob uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok {
		return nil
	}
	if !st.deleted {
		return fmt.Errorf("vmanager: blob %d is live, refusing to forget", blob)
	}
	delete(m.blobs, blob)
	return nil
}

// MetaStore returns the metadata store the manager persists trees into —
// the garbage collector's node-sweep surface.
func (m *Manager) MetaStore() blobmeta.Store { return m.store }

// AssignWrite admits a write of length bytes at a fixed offset and
// returns its ticket.
func (m *Manager) AssignWrite(blob uint64, user string, offset, length int64) (Ticket, error) {
	if offset < 0 || length < 0 {
		return Ticket{}, fmt.Errorf("vmanager: negative offset or length")
	}
	return m.assign(blob, user, offset, length, false)
}

// AssignAppend admits an append of length bytes; the offset is resolved
// against the end of the last assigned write, so concurrent appends get
// disjoint ranges (BlobSeer's append semantics).
func (m *Manager) AssignAppend(blob uint64, user string, length int64) (Ticket, error) {
	if length < 0 {
		return Ticket{}, fmt.Errorf("vmanager: negative length")
	}
	return m.assign(blob, user, -1, length, true)
}

func (m *Manager) assign(blob uint64, user string, offset, length int64, isAppend bool) (Ticket, error) {
	m.mu.Lock()
	st, err := m.state(blob)
	if err != nil {
		m.mu.Unlock()
		return Ticket{}, err
	}
	if isAppend {
		offset = st.tail
	}
	v := st.nextVer
	st.nextVer++
	end := offset + length
	st.ends[v] = end
	if end > st.tail {
		st.tail = end
	}
	t := Ticket{Blob: blob, Version: v, Offset: offset, ChunkSize: st.info.ChunkSize}
	m.mu.Unlock()
	op := instrument.OpAssign
	m.emit.Emit(instrument.Event{
		Time: m.now(), Actor: instrument.ActorVManager, User: user,
		Op: op, Blob: blob, Version: v, Offset: offset, Bytes: length,
	})
	return t, nil
}

// Publish submits the chunk descriptors of an assigned version. The
// version becomes visible once all predecessors have been published;
// until then it is queued. writes maps chunk index → descriptor.
func (m *Manager) Publish(blob uint64, version uint64, writer string, writes map[int64]chunk.Desc) error {
	m.mu.Lock()
	st, err := m.state(blob)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if version == 0 || version >= st.nextVer {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	if version <= st.applied {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrDoublePublish, version)
	}
	if _, dup := st.queued[version]; dup {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrDoublePublish, version)
	}
	st.queued[version] = pendingPub{writes: writes, writer: writer}
	published, err := m.drainLocked(st)
	m.mu.Unlock()
	for _, v := range published {
		m.emit.Emit(instrument.Event{
			Time: m.now(), Actor: instrument.ActorVManager, User: writer,
			Op: instrument.OpPublish, Blob: blob, Version: v,
		})
	}
	return err
}

// Abort publishes an empty write for an assigned version, unblocking the
// chain when a writer dies after Assign.
func (m *Manager) Abort(blob uint64, version uint64) error {
	return m.Publish(blob, version, "", nil)
}

// drainLocked applies queued publications in version order starting at
// applied+1. Returns the versions made visible.
func (m *Manager) drainLocked(st *blobState) ([]uint64, error) {
	var published []uint64
	for {
		next := st.applied + 1
		pub, ok := st.queued[next]
		if !ok {
			return published, nil
		}
		if err := st.tree.Write(next, st.applied, pub.writes); err != nil {
			return published, err
		}
		delete(st.queued, next)
		size := st.versions[st.applied].Size
		if end := st.ends[next]; end > size && len(pub.writes) > 0 {
			size = end
		}
		delete(st.ends, next)
		st.versions[next] = VersionMeta{
			Version: next, Size: size, Writer: pub.writer, Published: m.now(),
		}
		st.applied = next
		published = append(published, next)
	}
}

// Latest returns the newest published version's metadata.
func (m *Manager) Latest(blob uint64) (VersionMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return VersionMeta{}, err
	}
	return st.versions[st.applied], nil
}

// Version returns the metadata of one published version.
func (m *Manager) Version(blob, version uint64) (VersionMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return VersionMeta{}, err
	}
	vm, ok := st.versions[version]
	if !ok {
		return VersionMeta{}, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	return vm, nil
}

// Versions lists the published versions of a BLOB in ascending order.
func (m *Manager) Versions(blob uint64) ([]VersionMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return nil, err
	}
	out := make([]VersionMeta, 0, len(st.versions))
	for _, vm := range st.versions {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// PendingCount returns the number of assigned-but-unpublished versions
// (a health signal for the monitoring layer).
func (m *Manager) PendingCount(blob uint64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return 0, err
	}
	return int(st.nextVer - 1 - st.applied), nil
}

// Tree exposes the metadata tree of a BLOB for read-side components
// (client reads, replication scans).
func (m *Manager) Tree(blob uint64) (*blobmeta.Tree, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return nil, err
	}
	return st.tree, nil
}

// SetRetention installs the BLOB's version-retention policy. The zero
// Retention restores keep-everything.
func (m *Manager) SetRetention(blob uint64, r Retention) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return err
	}
	st.retention = r
	return nil
}

// RetentionOf returns the BLOB's version-retention policy.
func (m *Manager) RetentionOf(blob uint64) (Retention, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return Retention{}, err
	}
	return st.retention, nil
}

// RetentionCandidates returns the published versions the BLOB's policy
// nominates for retirement at instant now, in ascending order. The
// latest published version and the empty version 0 are never nominated.
// Callers (the garbage collector) filter out pinned versions before
// retiring.
func (m *Manager) RetentionCandidates(blob uint64, now time.Time) ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return nil, err
	}
	if st.retention.zero() {
		return nil, nil
	}
	published := make([]uint64, 0, len(st.versions))
	for v := range st.versions {
		if v > 0 && v <= st.applied {
			published = append(published, v)
		}
	}
	sort.Slice(published, func(i, j int) bool { return published[i] < published[j] })
	nominated := map[uint64]bool{}
	if n := st.retention.KeepLast; n > 0 && len(published) > n {
		for _, v := range published[:len(published)-n] {
			nominated[v] = true
		}
	}
	if age := st.retention.MaxAge; age > 0 {
		cutoff := now.Add(-age)
		for _, v := range published {
			if v != st.applied && st.versions[v].Published.Before(cutoff) {
				nominated[v] = true
			}
		}
	}
	delete(nominated, st.applied)
	out := make([]uint64, 0, len(nominated))
	for v := range nominated {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// RetireVersions removes the metadata of the given published versions,
// making them unreadable and — once the next sweep runs — reclaimable:
// chunks referenced only by retired versions stop being marked live.
// The latest published version cannot be retired; unknown versions fail
// with ErrBadVersion. Metadata-tree nodes of retired versions stay in
// the metadata store (chunk space, not node space, is what grows without
// bound). Returns how many versions were retired.
func (m *Manager) RetireVersions(blob uint64, vers []uint64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return 0, err
	}
	// A version held by a live writer lease (HoldVersion) is silently
	// skipped, not an error: retention keeps running and retires it on a
	// later pass once the writer finishes its partial-slot merges.
	if len(st.holds) > 0 {
		kept := vers[:0:0]
		for _, v := range vers {
			if st.holds[v] == 0 {
				kept = append(kept, v)
			}
		}
		vers = kept
	}
	// Validate the whole batch first so a bad entry retires nothing.
	for _, v := range vers {
		if v == st.applied {
			return 0, fmt.Errorf("%w: %d", ErrRetireLatest, v)
		}
		if _, ok := st.versions[v]; !ok || v == 0 {
			return 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
	}
	for _, v := range vers {
		delete(st.versions, v)
	}
	if len(vers) > 0 {
		m.emit.Emit(instrument.Event{
			Time: m.now(), Actor: instrument.ActorVManager, Op: instrument.OpRetire,
			Blob: blob, Value: float64(len(vers)),
		})
	}
	return len(vers), nil
}

// HoldVersion pins one published version against retirement on behalf
// of a writer lease: RetireVersions silently skips held versions until
// the matching ReleaseVersion, so a BlobWriter's partial-slot merges
// can keep reading their base version's metadata mid-stream. Holds
// nest (one count per open lease). Holding an unknown version fails
// with ErrBadVersion.
func (m *Manager) HoldVersion(blob, version uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.state(blob)
	if err != nil {
		return err
	}
	if _, ok := st.versions[version]; !ok {
		return fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	if st.holds == nil {
		st.holds = make(map[uint64]int)
	}
	st.holds[version]++
	return nil
}

// ReleaseVersion drops one HoldVersion count. It is tolerant of
// deleted blobs and unknown versions (the blob may have been deleted
// while the writer streamed; release must still succeed).
func (m *Manager) ReleaseVersion(blob, version uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok || st.holds == nil {
		return
	}
	if st.holds[version] > 1 {
		st.holds[version]--
	} else {
		delete(st.holds, version)
	}
}

// VersionSlots lists one published version's per-slot chunk descriptors
// (holes omitted) in ascending slot order.
type VersionSlots struct {
	Version uint64
	Slots   []chunk.Desc
}

// DeleteExact marks the BLOB deleted like Delete, but returns every
// retained version's per-slot descriptors instead of one deduplicated
// set: a slot whose content repeats elsewhere appears once per slot, so
// a caller reclaiming a single-version BLOB can balance provider
// refcounts exactly (the garbage collector's fast path; multi-version
// BLOBs share unchanged slots across versions and are reclaimed by the
// sweep instead).
func (m *Manager) DeleteExact(blob uint64) ([]VersionSlots, error) {
	m.mu.Lock()
	st, err := m.state(blob)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	st.deleted = true
	tree := st.tree
	versions := make([]uint64, 0, len(st.versions))
	for v := range st.versions {
		if v > 0 {
			versions = append(versions, v)
		}
	}
	m.mu.Unlock()
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })

	out := make([]VersionSlots, 0, len(versions))
	for _, v := range versions {
		vs := VersionSlots{Version: v}
		err := tree.Walk(v, 0, tree.Span(), func(_ int64, d chunk.Desc) error {
			if !d.ID.IsZero() {
				vs.Slots = append(vs.Slots, d)
			}
			return nil
		})
		if err != nil {
			return out, err
		}
		out = append(out, vs)
	}
	m.emit.Emit(instrument.Event{
		Time: m.now(), Actor: instrument.ActorVManager, Op: instrument.OpDelete, Blob: blob,
	})
	return out, nil
}

// Delete marks a BLOB deleted and returns the *distinct* chunk
// descriptors reachable from all its published versions so the caller
// can reclaim provider space (used by the self-optimization removal
// strategies). Descriptors are deduplicated by chunk ID: a chunk whose
// content repeats across slots or versions is returned once, so callers
// that reclaim by decrementing per-descriptor under-release repeated
// content — use DeleteExact (single-version) or the gc sweep when exact
// reclamation matters.
func (m *Manager) Delete(blob uint64) ([]chunk.Desc, error) {
	m.mu.Lock()
	st, err := m.state(blob)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	st.deleted = true
	tree := st.tree
	versions := make([]uint64, 0, len(st.versions))
	for v := range st.versions {
		if v > 0 {
			versions = append(versions, v)
		}
	}
	m.mu.Unlock()

	seen := map[chunk.ID]bool{}
	var out []chunk.Desc
	for _, v := range versions {
		err := tree.Walk(v, 0, tree.Span(), func(_ int64, d chunk.Desc) error {
			if !seen[d.ID] {
				seen[d.ID] = true
				out = append(out, d)
			}
			return nil
		})
		if err != nil {
			return out, err
		}
	}
	m.emit.Emit(instrument.Event{
		Time: m.now(), Actor: instrument.ActorVManager, Op: instrument.OpDelete, Blob: blob,
	})
	return out, nil
}
