// Package blobmeta implements BlobSeer's distributed metadata: a
// versioned segment tree over each BLOB's chunk-index space, whose nodes
// are immutable and distributed across metadata providers by key hash.
//
// Every BLOB version is identified by the root node of its tree. A write
// creates new leaves for the written chunk slots and copies the path to
// the root; all untouched subtrees are shared with earlier versions by
// referencing the version number under which they were created. This is
// what gives BlobSeer lock-free concurrent reads on any published version
// while writes proceed.
package blobmeta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blobseer/internal/chunk"
	"blobseer/internal/instrument"
)

// DefaultSpan is the fixed chunk-index span covered by every root node
// (2^32 chunk slots). Using a fixed span keeps tree depth constant and
// makes append-driven growth free: unwritten ranges are holes.
const DefaultSpan int64 = 1 << 32

// Errors returned by the metadata layer.
var (
	ErrNotFound  = errors.New("blobmeta: node not found")
	ErrBadRange  = errors.New("blobmeta: invalid range")
	ErrBadSpan   = errors.New("blobmeta: span must be a power of two")
	ErrCorrupted = errors.New("blobmeta: corrupted tree")
)

// NodeKey identifies one immutable tree node: the subtree of blob
// `Blob`, created by version `Version`, covering chunk indices [Lo, Hi).
type NodeKey struct {
	Blob    uint64
	Version uint64
	Lo, Hi  int64
}

func (k NodeKey) String() string {
	return fmt.Sprintf("%d/v%d[%d,%d)", k.Blob, k.Version, k.Lo, k.Hi)
}

// Node is a tree node. Leaves (Hi-Lo == 1) carry a chunk descriptor;
// inner nodes reference their children by the version that created them
// (0 = hole: the child range has never been written).
type Node struct {
	Leaf              bool
	Desc              chunk.Desc
	LeftVer, RightVer uint64
}

// Store is the metadata-provider persistence interface. Nodes are
// immutable: Put of an existing key must be idempotent.
type Store interface {
	Put(NodeKey, Node) error
	Get(NodeKey) (Node, bool, error)
	Len() int
}

// NodeStore is the optional Store extension the metadata sweep
// (internal/gc) consumes: paged key enumeration and node deletion.
// Nodes stay immutable — Delete exists only so the sweep can drop nodes
// reachable solely from retired or deleted versions.
type NodeStore interface {
	Store
	// ListNodes returns up to limit node keys strictly greater than
	// after in (Blob, Version, Lo, Hi) order, and whether more remain.
	// The zero NodeKey starts from the beginning (version 0 is reserved,
	// so no stored key compares at or below it). limit ≤ 0 selects an
	// implementation default. Keys inserted or removed concurrently may
	// or may not appear; a key present for the whole scan appears
	// exactly once.
	ListNodes(after NodeKey, limit int) ([]NodeKey, bool)
	// Keys returns a snapshot of the stored node keys.
	//
	// Deprecated: Keys materializes the whole key set at once; page with
	// ListNodes instead.
	Keys() []NodeKey
	// Delete removes a node; deleting an absent key is a no-op.
	Delete(k NodeKey) error
}

// listNodesDefaultLimit is the page size ListNodes implementations use
// when the caller passes limit ≤ 0.
const listNodesDefaultLimit = 1024

// drainNodes implements the deprecated Keys surface on top of paging.
func drainNodes(ns NodeStore) []NodeKey {
	var out []NodeKey
	var after NodeKey
	for {
		page, more := ns.ListNodes(after, listNodesDefaultLimit)
		out = append(out, page...)
		if !more || len(page) == 0 {
			return out
		}
		after = page[len(page)-1]
	}
}

// fnv64 constants (FNV-1a), inlined so per-access hashing allocates
// nothing — hashKey runs on every metadata Get/Put via Ring.pick and the
// MemStore stripe selection.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvWord folds one key word into an FNV-1a state, byte by byte in
// little-endian order (the same sequence hash/fnv produced when the key
// words were serialized through a scratch buffer).
func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// hashKey hashes a node key with zero allocations.
func hashKey(k NodeKey) uint64 {
	return fnvWord(fnvWord(fnvWord(fnvWord(fnvOffset64, k.Blob), k.Version), uint64(k.Lo)), uint64(k.Hi))
}

// memStripes is the number of lock stripes in a MemStore. Tree paths of
// one version spread across stripes, so parallel mark workers walking
// different blobs do not serialize on one lock.
const memStripes = 16

// memStripe is one independently locked shard of the node map. idx
// shadows the map's key set in sorted order so ListNodes pages without
// snapshotting the stripe.
type memStripe struct {
	mu  sync.RWMutex
	m   map[NodeKey]Node
	idx nodeIndex
}

// MemStore is an in-memory metadata provider. The node map is sharded
// into lock stripes keyed by node-key hash (a different bit range than
// Ring.pick consumes, so ring sharding does not collapse the stripes).
type MemStore struct {
	id      string
	emit    instrument.Emitter
	now     func() time.Time
	stripes [memStripes]memStripe
}

// NewMemStore returns an empty metadata provider. emit and now may be nil.
func NewMemStore(id string, emit instrument.Emitter, now func() time.Time) *MemStore {
	if emit == nil {
		emit = instrument.Nop{}
	}
	if now == nil {
		now = time.Now
	}
	s := &MemStore{id: id, emit: emit, now: now}
	for i := range s.stripes {
		s.stripes[i].m = make(map[NodeKey]Node)
	}
	return s
}

// ID returns the provider identity.
func (s *MemStore) ID() string { return s.id }

// stripe picks the lock stripe for a key, from the hash's upper bits
// (Ring.pick consumes the low bits via modulo).
func (s *MemStore) stripe(k NodeKey) *memStripe {
	return &s.stripes[(hashKey(k)>>32)&(memStripes-1)]
}

// Put stores a node (idempotent).
func (s *MemStore) Put(k NodeKey, n Node) error {
	st := s.stripe(k)
	st.mu.Lock()
	if _, ok := st.m[k]; !ok {
		st.idx.insert(k)
	}
	st.m[k] = n
	st.mu.Unlock()
	s.emit.Emit(instrument.Event{
		Time: s.now(), Actor: instrument.ActorMetaProvider, Node: s.id,
		Op: instrument.OpMetaPut, Blob: k.Blob, Version: k.Version,
	})
	return nil
}

// Get fetches a node.
func (s *MemStore) Get(k NodeKey) (Node, bool, error) {
	st := s.stripe(k)
	st.mu.RLock()
	n, ok := st.m[k]
	st.mu.RUnlock()
	s.emit.Emit(instrument.Event{
		Time: s.now(), Actor: instrument.ActorMetaProvider, Node: s.id,
		Op: instrument.OpMetaGet, Blob: k.Blob, Version: k.Version,
	})
	return n, ok, nil
}

// Delete removes a node (absent keys are a no-op). Implements NodeStore.
func (s *MemStore) Delete(k NodeKey) error {
	st := s.stripe(k)
	st.mu.Lock()
	if _, ok := st.m[k]; ok {
		st.idx.remove(k)
		delete(st.m, k)
	}
	st.mu.Unlock()
	return nil
}

// ListNodes implements NodeStore: each stripe contributes its own
// sorted page (O(limit + log n) under a read lock) and the pages merge
// to one. Keys are hash-striped, so every stripe must be consulted for
// every page — but only limit keys are pulled from each.
func (s *MemStore) ListNodes(after NodeKey, limit int) ([]NodeKey, bool) {
	if limit <= 0 {
		limit = listNodesDefaultLimit
	}
	// limit+1 from each stripe makes "more" detection exact after the
	// merge without a second round of stripe queries.
	merged := make([]NodeKey, 0, limit+1)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		page := st.idx.page(after, limit+1)
		st.mu.RUnlock()
		merged = mergeNodeKeys(merged, page, limit+1)
	}
	if len(merged) > limit {
		return merged[:limit], true
	}
	return merged, false
}

// mergeNodeKeys merges two ascending key slices, keeping at most limit
// keys. The result may alias a's backing array.
func mergeNodeKeys(a, b []NodeKey, limit int) []NodeKey {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		if len(b) > limit {
			b = b[:limit]
		}
		return append(a, b...)
	}
	out := make([]NodeKey, 0, min(len(a)+len(b), limit))
	i, j := 0, 0
	for len(out) < limit && (i < len(a) || j < len(b)) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case nodeKeyCmp(a[i], b[j]) <= 0:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// Keys returns a snapshot of the stored node keys.
//
// Deprecated: page with ListNodes instead.
func (s *MemStore) Keys() []NodeKey { return drainNodes(s) }

// Len returns the number of stored nodes.
func (s *MemStore) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.m)
		st.mu.RUnlock()
	}
	return n
}

// Ring shards nodes across several metadata providers by key hash,
// mirroring BlobSeer's DHT-distributed metadata.
type Ring struct {
	stores []Store
}

// NewRing returns a ring over the given stores (at least one).
func NewRing(stores ...Store) (*Ring, error) {
	if len(stores) == 0 {
		return nil, errors.New("blobmeta: ring needs at least one store")
	}
	return &Ring{stores: append([]Store(nil), stores...)}, nil
}

func (r *Ring) pick(k NodeKey) Store {
	return r.stores[hashKey(k)%uint64(len(r.stores))]
}

// Put implements Store.
func (r *Ring) Put(k NodeKey, n Node) error { return r.pick(k).Put(k, n) }

// Get implements Store.
func (r *Ring) Get(k NodeKey) (Node, bool, error) { return r.pick(k).Get(k) }

// Len implements Store (sum over shards).
func (r *Ring) Len() int {
	var n int
	for _, s := range r.stores {
		n += s.Len()
	}
	return n
}

// ListNodes implements NodeStore: the merge of every shard's page.
// Shards that do not implement NodeStore contribute nothing — their
// nodes are invisible to the metadata sweep and therefore never deleted
// (the safe direction: a leak, not a lost node). Callers that act on
// the *absence* of keys (e.g. forgetting a deleted BLOB once its nodes
// are gone) must check NodesComplete first.
func (r *Ring) ListNodes(after NodeKey, limit int) ([]NodeKey, bool) {
	if limit <= 0 {
		limit = listNodesDefaultLimit
	}
	merged := make([]NodeKey, 0, limit+1)
	for _, s := range r.stores {
		if ns, ok := s.(NodeStore); ok {
			page, _ := ns.ListNodes(after, limit+1)
			merged = mergeNodeKeys(merged, page, limit+1)
		}
	}
	if len(merged) > limit {
		return merged[:limit], true
	}
	return merged, false
}

// Keys returns the union of every NodeStore shard's keys.
//
// Deprecated: page with ListNodes instead.
func (r *Ring) Keys() []NodeKey { return drainNodes(r) }

// NodesComplete reports whether Keys enumerates every stored node —
// true only when every shard implements NodeStore. The garbage
// collector refuses to conclude "all nodes reclaimed" from a partial
// enumeration.
func (r *Ring) NodesComplete() bool {
	for _, s := range r.stores {
		if _, ok := s.(NodeStore); !ok {
			return false
		}
	}
	return true
}

// Delete implements NodeStore, routing to the shard that owns the key.
func (r *Ring) Delete(k NodeKey) error {
	ns, ok := r.pick(k).(NodeStore)
	if !ok {
		return fmt.Errorf("blobmeta: shard for %v does not support node deletion", k)
	}
	return ns.Delete(k)
}

// Shards returns the per-shard node counts (balance diagnostics).
func (r *Ring) Shards() []int {
	out := make([]int, len(r.stores))
	for i, s := range r.stores {
		out[i] = s.Len()
	}
	return out
}

// Tree provides versioned read/write access to one BLOB's metadata.
type Tree struct {
	store Store
	blob  uint64
	span  int64
}

// NewTree returns a tree for the BLOB over the given store. span ≤ 0
// selects DefaultSpan; otherwise span must be a power of two.
func NewTree(store Store, blob uint64, span int64) (*Tree, error) {
	if span <= 0 {
		span = DefaultSpan
	}
	if span&(span-1) != 0 {
		return nil, ErrBadSpan
	}
	return &Tree{store: store, blob: blob, span: span}, nil
}

// Span returns the chunk-index span of the tree.
func (t *Tree) Span() int64 { return t.span }

// Write materializes newVer on top of baseVer with the given chunk
// descriptors (keyed by chunk index). baseVer 0 means "empty BLOB".
// It creates the new leaves and the copied paths, sharing every
// untouched subtree with the base version, and always creates a root
// node for newVer (so the version is readable even for empty writes).
func (t *Tree) Write(newVer, baseVer uint64, writes map[int64]chunk.Desc) error {
	if newVer == 0 {
		return errors.New("blobmeta: version 0 is reserved for the empty BLOB")
	}
	idx := make([]int64, 0, len(writes))
	for i := range writes {
		if i < 0 || i >= t.span {
			return fmt.Errorf("%w: chunk index %d outside [0,%d)", ErrBadRange, i, t.span)
		}
		idx = append(idx, i)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	b := &builder{tree: t, newVer: newVer, writes: writes, sorted: idx}
	_, err := b.descend(0, t.span, baseVer, true)
	return err
}

type builder struct {
	tree   *Tree
	newVer uint64
	writes map[int64]chunk.Desc
	sorted []int64
}

// anyIn reports whether a written index falls in [lo, hi).
func (b *builder) anyIn(lo, hi int64) bool {
	i := sort.Search(len(b.sorted), func(i int) bool { return b.sorted[i] >= lo })
	return i < len(b.sorted) && b.sorted[i] < hi
}

// descend builds the subtree for [lo, hi). baseVer is the version of the
// base tree's node covering exactly this range (0 = hole). It returns the
// version under which the resulting subtree can be found.
func (b *builder) descend(lo, hi int64, baseVer uint64, force bool) (uint64, error) {
	if !b.anyIn(lo, hi) && !force {
		return baseVer, nil // share the base subtree untouched
	}
	key := NodeKey{Blob: b.tree.blob, Version: b.newVer, Lo: lo, Hi: hi}
	if hi-lo == 1 {
		desc, ok := b.writes[lo]
		if !ok {
			// force-created leaf with no write: copy base leaf if any.
			if baseVer == 0 {
				return 0, nil
			}
			return baseVer, nil
		}
		if err := b.tree.store.Put(key, Node{Leaf: true, Desc: desc.Clone()}); err != nil {
			return 0, err
		}
		return b.newVer, nil
	}
	var baseLeft, baseRight uint64
	if baseVer != 0 {
		bn, ok, err := b.tree.store.Get(NodeKey{Blob: b.tree.blob, Version: baseVer, Lo: lo, Hi: hi})
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("%w: missing base node v%d [%d,%d)", ErrCorrupted, baseVer, lo, hi)
		}
		baseLeft, baseRight = bn.LeftVer, bn.RightVer
	}
	mid := lo + (hi-lo)/2
	lv, err := b.descend(lo, mid, baseLeft, false)
	if err != nil {
		return 0, err
	}
	rv, err := b.descend(mid, hi, baseRight, false)
	if err != nil {
		return 0, err
	}
	if err := b.tree.store.Put(key, Node{LeftVer: lv, RightVer: rv}); err != nil {
		return 0, err
	}
	return b.newVer, nil
}

// Read returns the chunk descriptors for chunk indices [lo, hi) of the
// given version; holes yield zero descriptors. Version 0 yields all holes.
func (t *Tree) Read(ver uint64, lo, hi int64) ([]chunk.Desc, error) {
	if lo < 0 || hi > t.span || lo > hi {
		return nil, fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	out := make([]chunk.Desc, hi-lo)
	if ver == 0 || lo == hi {
		return out, nil
	}
	err := t.read(ver, 0, t.span, lo, hi, out)
	return out, err
}

func (t *Tree) read(ver uint64, nodeLo, nodeHi, lo, hi int64, out []chunk.Desc) error {
	if ver == 0 || nodeHi <= lo || nodeLo >= hi {
		return nil
	}
	n, ok, err := t.store.Get(NodeKey{Blob: t.blob, Version: ver, Lo: nodeLo, Hi: nodeHi})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: missing node v%d [%d,%d)", ErrCorrupted, ver, nodeLo, nodeHi)
	}
	if nodeHi-nodeLo == 1 {
		if !n.Leaf {
			return fmt.Errorf("%w: non-leaf at unit range", ErrCorrupted)
		}
		out[nodeLo-lo] = n.Desc.Clone()
		return nil
	}
	mid := nodeLo + (nodeHi-nodeLo)/2
	if err := t.read(n.LeftVer, nodeLo, mid, lo, hi, out); err != nil {
		return err
	}
	return t.read(n.RightVer, mid, nodeHi, lo, hi, out)
}

// DescAt returns the descriptor for a single chunk index (ok=false for a
// hole).
func (t *Tree) DescAt(ver uint64, idx int64) (chunk.Desc, bool, error) {
	ds, err := t.Read(ver, idx, idx+1)
	if err != nil {
		return chunk.Desc{}, false, err
	}
	return ds[0], !ds[0].ID.IsZero(), nil
}

// Walk visits every non-hole leaf of a version in index order, stopping
// within [lo, hi). Used by the replication manager to scan replica health.
func (t *Tree) Walk(ver uint64, lo, hi int64, visit func(idx int64, d chunk.Desc) error) error {
	if ver == 0 {
		return nil
	}
	return t.walk(ver, 0, t.span, lo, hi, visit)
}

func (t *Tree) walk(ver uint64, nodeLo, nodeHi, lo, hi int64, visit func(int64, chunk.Desc) error) error {
	if ver == 0 || nodeHi <= lo || nodeLo >= hi {
		return nil
	}
	n, ok, err := t.store.Get(NodeKey{Blob: t.blob, Version: ver, Lo: nodeLo, Hi: nodeHi})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: missing node v%d [%d,%d)", ErrCorrupted, ver, nodeLo, nodeHi)
	}
	if nodeHi-nodeLo == 1 {
		if n.Desc.ID.IsZero() {
			return nil
		}
		return visit(nodeLo, n.Desc.Clone())
	}
	mid := nodeLo + (nodeHi-nodeLo)/2
	if err := t.walk(n.LeftVer, nodeLo, mid, lo, hi, visit); err != nil {
		return err
	}
	return t.walk(n.RightVer, mid, nodeHi, lo, hi, visit)
}

// WalkNodes visits every tree node reachable from a version — inner
// nodes and leaves alike — as (NodeKey, Node) pairs in depth-first
// order. prune, when non-nil, is consulted with a subtree's key before
// it is fetched: returning true skips the node and its whole subtree.
//
// Pruning is what makes marking all versions of a BLOB cost O(distinct
// nodes) instead of O(versions × nodes): untouched subtrees are shared
// across versions by reference, so a caller that records visited keys
// and prunes on them re-descends each shared subtree exactly once —
// node keys are immutable identities, and a key that was visited before
// roots a subtree that was visited in full before. Version 0 (the empty
// BLOB) has no nodes.
func (t *Tree) WalkNodes(ver uint64, prune func(NodeKey) bool, visit func(NodeKey, Node) error) error {
	if ver == 0 {
		return nil
	}
	return t.walkNodes(ver, 0, t.span, prune, visit)
}

func (t *Tree) walkNodes(ver uint64, lo, hi int64, prune func(NodeKey) bool, visit func(NodeKey, Node) error) error {
	if ver == 0 {
		return nil
	}
	key := NodeKey{Blob: t.blob, Version: ver, Lo: lo, Hi: hi}
	if prune != nil && prune(key) {
		return nil
	}
	n, ok, err := t.store.Get(key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: missing node v%d [%d,%d)", ErrCorrupted, ver, lo, hi)
	}
	if hi-lo == 1 && !n.Leaf {
		return fmt.Errorf("%w: non-leaf at unit range", ErrCorrupted)
	}
	if err := visit(key, n); err != nil {
		return err
	}
	if hi-lo == 1 {
		return nil
	}
	mid := lo + (hi-lo)/2
	if err := t.walkNodes(n.LeftVer, lo, mid, prune, visit); err != nil {
		return err
	}
	return t.walkNodes(n.RightVer, mid, hi, prune, visit)
}
