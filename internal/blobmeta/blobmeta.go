// Package blobmeta implements BlobSeer's distributed metadata: a
// versioned segment tree over each BLOB's chunk-index space, whose nodes
// are immutable and distributed across metadata providers by key hash.
//
// Every BLOB version is identified by the root node of its tree. A write
// creates new leaves for the written chunk slots and copies the path to
// the root; all untouched subtrees are shared with earlier versions by
// referencing the version number under which they were created. This is
// what gives BlobSeer lock-free concurrent reads on any published version
// while writes proceed.
package blobmeta

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"blobseer/internal/chunk"
	"blobseer/internal/instrument"
)

// DefaultSpan is the fixed chunk-index span covered by every root node
// (2^32 chunk slots). Using a fixed span keeps tree depth constant and
// makes append-driven growth free: unwritten ranges are holes.
const DefaultSpan int64 = 1 << 32

// Errors returned by the metadata layer.
var (
	ErrNotFound  = errors.New("blobmeta: node not found")
	ErrBadRange  = errors.New("blobmeta: invalid range")
	ErrBadSpan   = errors.New("blobmeta: span must be a power of two")
	ErrCorrupted = errors.New("blobmeta: corrupted tree")
)

// NodeKey identifies one immutable tree node: the subtree of blob
// `Blob`, created by version `Version`, covering chunk indices [Lo, Hi).
type NodeKey struct {
	Blob    uint64
	Version uint64
	Lo, Hi  int64
}

func (k NodeKey) String() string {
	return fmt.Sprintf("%d/v%d[%d,%d)", k.Blob, k.Version, k.Lo, k.Hi)
}

// Node is a tree node. Leaves (Hi-Lo == 1) carry a chunk descriptor;
// inner nodes reference their children by the version that created them
// (0 = hole: the child range has never been written).
type Node struct {
	Leaf              bool
	Desc              chunk.Desc
	LeftVer, RightVer uint64
}

// Store is the metadata-provider persistence interface. Nodes are
// immutable: Put of an existing key must be idempotent.
type Store interface {
	Put(NodeKey, Node) error
	Get(NodeKey) (Node, bool, error)
	Len() int
}

// MemStore is an in-memory metadata provider.
type MemStore struct {
	id   string
	emit instrument.Emitter
	now  func() time.Time
	mu   sync.RWMutex
	m    map[NodeKey]Node
}

// NewMemStore returns an empty metadata provider. emit and now may be nil.
func NewMemStore(id string, emit instrument.Emitter, now func() time.Time) *MemStore {
	if emit == nil {
		emit = instrument.Nop{}
	}
	if now == nil {
		now = time.Now
	}
	return &MemStore{id: id, emit: emit, now: now, m: make(map[NodeKey]Node)}
}

// ID returns the provider identity.
func (s *MemStore) ID() string { return s.id }

// Put stores a node (idempotent).
func (s *MemStore) Put(k NodeKey, n Node) error {
	s.mu.Lock()
	s.m[k] = n
	s.mu.Unlock()
	s.emit.Emit(instrument.Event{
		Time: s.now(), Actor: instrument.ActorMetaProvider, Node: s.id,
		Op: instrument.OpMetaPut, Blob: k.Blob, Version: k.Version,
	})
	return nil
}

// Get fetches a node.
func (s *MemStore) Get(k NodeKey) (Node, bool, error) {
	s.mu.RLock()
	n, ok := s.m[k]
	s.mu.RUnlock()
	s.emit.Emit(instrument.Event{
		Time: s.now(), Actor: instrument.ActorMetaProvider, Node: s.id,
		Op: instrument.OpMetaGet, Blob: k.Blob, Version: k.Version,
	})
	return n, ok, nil
}

// Len returns the number of stored nodes.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Ring shards nodes across several metadata providers by key hash,
// mirroring BlobSeer's DHT-distributed metadata.
type Ring struct {
	stores []Store
}

// NewRing returns a ring over the given stores (at least one).
func NewRing(stores ...Store) (*Ring, error) {
	if len(stores) == 0 {
		return nil, errors.New("blobmeta: ring needs at least one store")
	}
	return &Ring{stores: append([]Store(nil), stores...)}, nil
}

func (r *Ring) pick(k NodeKey) Store {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{k.Blob, k.Version, uint64(k.Lo), uint64(k.Hi)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return r.stores[h.Sum64()%uint64(len(r.stores))]
}

// Put implements Store.
func (r *Ring) Put(k NodeKey, n Node) error { return r.pick(k).Put(k, n) }

// Get implements Store.
func (r *Ring) Get(k NodeKey) (Node, bool, error) { return r.pick(k).Get(k) }

// Len implements Store (sum over shards).
func (r *Ring) Len() int {
	var n int
	for _, s := range r.stores {
		n += s.Len()
	}
	return n
}

// Shards returns the per-shard node counts (balance diagnostics).
func (r *Ring) Shards() []int {
	out := make([]int, len(r.stores))
	for i, s := range r.stores {
		out[i] = s.Len()
	}
	return out
}

// Tree provides versioned read/write access to one BLOB's metadata.
type Tree struct {
	store Store
	blob  uint64
	span  int64
}

// NewTree returns a tree for the BLOB over the given store. span ≤ 0
// selects DefaultSpan; otherwise span must be a power of two.
func NewTree(store Store, blob uint64, span int64) (*Tree, error) {
	if span <= 0 {
		span = DefaultSpan
	}
	if span&(span-1) != 0 {
		return nil, ErrBadSpan
	}
	return &Tree{store: store, blob: blob, span: span}, nil
}

// Span returns the chunk-index span of the tree.
func (t *Tree) Span() int64 { return t.span }

// Write materializes newVer on top of baseVer with the given chunk
// descriptors (keyed by chunk index). baseVer 0 means "empty BLOB".
// It creates the new leaves and the copied paths, sharing every
// untouched subtree with the base version, and always creates a root
// node for newVer (so the version is readable even for empty writes).
func (t *Tree) Write(newVer, baseVer uint64, writes map[int64]chunk.Desc) error {
	if newVer == 0 {
		return errors.New("blobmeta: version 0 is reserved for the empty BLOB")
	}
	idx := make([]int64, 0, len(writes))
	for i := range writes {
		if i < 0 || i >= t.span {
			return fmt.Errorf("%w: chunk index %d outside [0,%d)", ErrBadRange, i, t.span)
		}
		idx = append(idx, i)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	b := &builder{tree: t, newVer: newVer, writes: writes, sorted: idx}
	_, err := b.descend(0, t.span, baseVer, true)
	return err
}

type builder struct {
	tree   *Tree
	newVer uint64
	writes map[int64]chunk.Desc
	sorted []int64
}

// anyIn reports whether a written index falls in [lo, hi).
func (b *builder) anyIn(lo, hi int64) bool {
	i := sort.Search(len(b.sorted), func(i int) bool { return b.sorted[i] >= lo })
	return i < len(b.sorted) && b.sorted[i] < hi
}

// descend builds the subtree for [lo, hi). baseVer is the version of the
// base tree's node covering exactly this range (0 = hole). It returns the
// version under which the resulting subtree can be found.
func (b *builder) descend(lo, hi int64, baseVer uint64, force bool) (uint64, error) {
	if !b.anyIn(lo, hi) && !force {
		return baseVer, nil // share the base subtree untouched
	}
	key := NodeKey{Blob: b.tree.blob, Version: b.newVer, Lo: lo, Hi: hi}
	if hi-lo == 1 {
		desc, ok := b.writes[lo]
		if !ok {
			// force-created leaf with no write: copy base leaf if any.
			if baseVer == 0 {
				return 0, nil
			}
			return baseVer, nil
		}
		if err := b.tree.store.Put(key, Node{Leaf: true, Desc: desc.Clone()}); err != nil {
			return 0, err
		}
		return b.newVer, nil
	}
	var baseLeft, baseRight uint64
	if baseVer != 0 {
		bn, ok, err := b.tree.store.Get(NodeKey{Blob: b.tree.blob, Version: baseVer, Lo: lo, Hi: hi})
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("%w: missing base node v%d [%d,%d)", ErrCorrupted, baseVer, lo, hi)
		}
		baseLeft, baseRight = bn.LeftVer, bn.RightVer
	}
	mid := lo + (hi-lo)/2
	lv, err := b.descend(lo, mid, baseLeft, false)
	if err != nil {
		return 0, err
	}
	rv, err := b.descend(mid, hi, baseRight, false)
	if err != nil {
		return 0, err
	}
	if err := b.tree.store.Put(key, Node{LeftVer: lv, RightVer: rv}); err != nil {
		return 0, err
	}
	return b.newVer, nil
}

// Read returns the chunk descriptors for chunk indices [lo, hi) of the
// given version; holes yield zero descriptors. Version 0 yields all holes.
func (t *Tree) Read(ver uint64, lo, hi int64) ([]chunk.Desc, error) {
	if lo < 0 || hi > t.span || lo > hi {
		return nil, fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	out := make([]chunk.Desc, hi-lo)
	if ver == 0 || lo == hi {
		return out, nil
	}
	err := t.read(ver, 0, t.span, lo, hi, out)
	return out, err
}

func (t *Tree) read(ver uint64, nodeLo, nodeHi, lo, hi int64, out []chunk.Desc) error {
	if ver == 0 || nodeHi <= lo || nodeLo >= hi {
		return nil
	}
	n, ok, err := t.store.Get(NodeKey{Blob: t.blob, Version: ver, Lo: nodeLo, Hi: nodeHi})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: missing node v%d [%d,%d)", ErrCorrupted, ver, nodeLo, nodeHi)
	}
	if nodeHi-nodeLo == 1 {
		if !n.Leaf {
			return fmt.Errorf("%w: non-leaf at unit range", ErrCorrupted)
		}
		out[nodeLo-lo] = n.Desc.Clone()
		return nil
	}
	mid := nodeLo + (nodeHi-nodeLo)/2
	if err := t.read(n.LeftVer, nodeLo, mid, lo, hi, out); err != nil {
		return err
	}
	return t.read(n.RightVer, mid, nodeHi, lo, hi, out)
}

// DescAt returns the descriptor for a single chunk index (ok=false for a
// hole).
func (t *Tree) DescAt(ver uint64, idx int64) (chunk.Desc, bool, error) {
	ds, err := t.Read(ver, idx, idx+1)
	if err != nil {
		return chunk.Desc{}, false, err
	}
	return ds[0], !ds[0].ID.IsZero(), nil
}

// Walk visits every non-hole leaf of a version in index order, stopping
// within [lo, hi). Used by the replication manager to scan replica health.
func (t *Tree) Walk(ver uint64, lo, hi int64, visit func(idx int64, d chunk.Desc) error) error {
	if ver == 0 {
		return nil
	}
	return t.walk(ver, 0, t.span, lo, hi, visit)
}

func (t *Tree) walk(ver uint64, nodeLo, nodeHi, lo, hi int64, visit func(int64, chunk.Desc) error) error {
	if ver == 0 || nodeHi <= lo || nodeLo >= hi {
		return nil
	}
	n, ok, err := t.store.Get(NodeKey{Blob: t.blob, Version: ver, Lo: nodeLo, Hi: nodeHi})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: missing node v%d [%d,%d)", ErrCorrupted, ver, nodeLo, nodeHi)
	}
	if nodeHi-nodeLo == 1 {
		if n.Desc.ID.IsZero() {
			return nil
		}
		return visit(nodeLo, n.Desc.Clone())
	}
	mid := nodeLo + (nodeHi-nodeLo)/2
	if err := t.walk(n.LeftVer, nodeLo, mid, lo, hi, visit); err != nil {
		return err
	}
	return t.walk(n.RightVer, mid, nodeHi, lo, hi, visit)
}
