// The always-sorted shadow index behind MemStore.ListNodes: the same
// two-level chunked sorted slice as the provider's chunk-ID index
// (internal/provider/index.go), keyed by NodeKey in (Blob, Version,
// Lo, Hi) order. One per lock stripe, guarded by the stripe's mutex, so
// node-sweep paging is O(limit + log n) per stripe instead of a full
// snapshot of the node map per pass.
package blobmeta

import (
	"slices"
	"sort"
)

// nodeKeyCmp orders node keys by (Blob, Version, Lo, Hi) — the paging
// order of NodeStore.ListNodes.
func nodeKeyCmp(a, b NodeKey) int {
	switch {
	case a.Blob != b.Blob:
		if a.Blob < b.Blob {
			return -1
		}
		return 1
	case a.Version != b.Version:
		if a.Version < b.Version {
			return -1
		}
		return 1
	case a.Lo != b.Lo:
		if a.Lo < b.Lo {
			return -1
		}
		return 1
	case a.Hi != b.Hi:
		if a.Hi < b.Hi {
			return -1
		}
		return 1
	}
	return 0
}

// nodeBlockCap bounds one key block: inserts and removals memmove at
// most one block, whatever the index size.
const nodeBlockCap = 256

// nodeIndex is an ordered set of node keys. Blocks are non-empty,
// sorted internally, and cover disjoint ascending ranges. The zero
// value is an empty index. Not safe for concurrent use: callers hold
// the owning stripe's mutex.
type nodeIndex struct {
	blocks [][]NodeKey
	count  int
}

// blockFor returns the index of the first block whose last key is ≥ k,
// or len(blocks) when k is greater than every stored key.
func (x *nodeIndex) blockFor(k NodeKey) int {
	return sort.Search(len(x.blocks), func(i int) bool {
		blk := x.blocks[i]
		return nodeKeyCmp(blk[len(blk)-1], k) >= 0
	})
}

// insert adds k; inserting a present key is a no-op.
func (x *nodeIndex) insert(k NodeKey) {
	if len(x.blocks) == 0 {
		blk := make([]NodeKey, 1, nodeBlockCap/2)
		blk[0] = k
		x.blocks = append(x.blocks, blk)
		x.count = 1
		return
	}
	bi := x.blockFor(k)
	if bi == len(x.blocks) {
		bi-- // greater than every key: extend the last block
	}
	blk := x.blocks[bi]
	pos := sort.Search(len(blk), func(i int) bool { return nodeKeyCmp(blk[i], k) >= 0 })
	if pos < len(blk) && blk[pos] == k {
		return
	}
	blk = slices.Insert(blk, pos, k)
	x.count++
	if len(blk) > nodeBlockCap {
		mid := len(blk) / 2
		right := append(make([]NodeKey, 0, nodeBlockCap/2+1), blk[mid:]...)
		x.blocks[bi] = blk[:mid:mid]
		x.blocks = slices.Insert(x.blocks, bi+1, right)
		return
	}
	x.blocks[bi] = blk
}

// remove drops k; removing an absent key is a no-op.
func (x *nodeIndex) remove(k NodeKey) {
	bi := x.blockFor(k)
	if bi == len(x.blocks) {
		return
	}
	blk := x.blocks[bi]
	pos := sort.Search(len(blk), func(i int) bool { return nodeKeyCmp(blk[i], k) >= 0 })
	if pos == len(blk) || blk[pos] != k {
		return
	}
	blk = slices.Delete(blk, pos, pos+1)
	if len(blk) == 0 {
		x.blocks = slices.Delete(x.blocks, bi, bi+1)
	} else {
		x.blocks[bi] = blk
	}
	x.count--
}

// page returns, in ascending order, up to limit keys strictly greater
// than after, at O(limit + log n).
func (x *nodeIndex) page(after NodeKey, limit int) []NodeKey {
	if limit <= 0 || len(x.blocks) == 0 {
		return nil
	}
	bi := sort.Search(len(x.blocks), func(i int) bool {
		blk := x.blocks[i]
		return nodeKeyCmp(blk[len(blk)-1], after) > 0
	})
	if bi == len(x.blocks) {
		return nil
	}
	blk := x.blocks[bi]
	pos := sort.Search(len(blk), func(i int) bool { return nodeKeyCmp(blk[i], after) > 0 })
	out := make([]NodeKey, 0, min(limit, 1024))
	for ; bi < len(x.blocks); bi++ {
		blk := x.blocks[bi]
		for ; pos < len(blk); pos++ {
			out = append(out, blk[pos])
			if len(out) == limit {
				return out
			}
		}
		pos = 0
	}
	return out
}
