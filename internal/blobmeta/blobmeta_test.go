package blobmeta

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"blobseer/internal/chunk"
)

func desc(tag string) chunk.Desc {
	return chunk.Desc{ID: chunk.Sum([]byte(tag)), Size: int64(len(tag)), Providers: []string{"p1"}}
}

func newTestTree(t *testing.T, span int64) *Tree {
	t.Helper()
	tr, err := NewTree(NewMemStore("m1", nil, nil), 1, span)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTreeSpanValidation(t *testing.T) {
	if _, err := NewTree(NewMemStore("m", nil, nil), 1, 3); !errors.Is(err, ErrBadSpan) {
		t.Fatalf("want ErrBadSpan, got %v", err)
	}
	tr, err := NewTree(NewMemStore("m", nil, nil), 1, 0)
	if err != nil || tr.Span() != DefaultSpan {
		t.Fatalf("default span: %v %d", err, tr.Span())
	}
}

func TestWriteReadSingleVersion(t *testing.T) {
	tr := newTestTree(t, 16)
	w := map[int64]chunk.Desc{0: desc("a"), 1: desc("b"), 5: desc("c")}
	if err := tr.Write(1, 0, w); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Read(1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		want, ok := w[i]
		if ok && got[i].ID != want.ID {
			t.Errorf("idx %d: got %v want %v", i, got[i].ID.Short(), want.ID.Short())
		}
		if !ok && !got[i].ID.IsZero() {
			t.Errorf("idx %d: want hole, got %v", i, got[i].ID.Short())
		}
	}
}

func TestVersionIsolation(t *testing.T) {
	tr := newTestTree(t, 8)
	if err := tr.Write(1, 0, map[int64]chunk.Desc{0: desc("v1-0"), 1: desc("v1-1")}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(2, 1, map[int64]chunk.Desc{1: desc("v2-1"), 2: desc("v2-2")}); err != nil {
		t.Fatal(err)
	}
	v1, err := tr.Read(1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := tr.Read(2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v1[1].ID != desc("v1-1").ID {
		t.Error("v1 leaked a v2 write")
	}
	if !v1[2].ID.IsZero() {
		t.Error("v1 should have a hole at idx 2")
	}
	if v2[0].ID != desc("v1-0").ID {
		t.Error("v2 lost the shared v1 chunk")
	}
	if v2[1].ID != desc("v2-1").ID || v2[2].ID != desc("v2-2").ID {
		t.Error("v2 writes missing")
	}
}

func TestStructuralSharing(t *testing.T) {
	store := NewMemStore("m1", nil, nil)
	tr, err := NewTree(store, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(1, 0, map[int64]chunk.Desc{0: desc("a")}); err != nil {
		t.Fatal(err)
	}
	before := store.Len()
	// Second version touches one leaf: node growth must be O(depth), not
	// O(tree size).
	if err := tr.Write(2, 1, map[int64]chunk.Desc{1: desc("b")}); err != nil {
		t.Fatal(err)
	}
	growth := store.Len() - before
	maxDepth := 11 // log2(1024) + leaf
	if growth > maxDepth+1 {
		t.Fatalf("node growth %d exceeds O(depth)=%d: no structural sharing", growth, maxDepth)
	}
}

func TestEmptyWriteCreatesReadableVersion(t *testing.T) {
	tr := newTestTree(t, 8)
	if err := tr.Write(1, 0, map[int64]chunk.Desc{3: desc("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(2, 1, nil); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Read(2, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[3].ID != desc("x").ID {
		t.Fatal("clone version lost base content")
	}
}

func TestWriteVersionZeroRejected(t *testing.T) {
	tr := newTestTree(t, 8)
	if err := tr.Write(0, 0, nil); err == nil {
		t.Fatal("want error for version 0")
	}
}

func TestWriteOutOfRange(t *testing.T) {
	tr := newTestTree(t, 8)
	err := tr.Write(1, 0, map[int64]chunk.Desc{8: desc("x")})
	if !errors.Is(err, ErrBadRange) {
		t.Fatalf("want ErrBadRange, got %v", err)
	}
	err = tr.Write(1, 0, map[int64]chunk.Desc{-1: desc("x")})
	if !errors.Is(err, ErrBadRange) {
		t.Fatalf("want ErrBadRange, got %v", err)
	}
}

func TestReadBadRange(t *testing.T) {
	tr := newTestTree(t, 8)
	if _, err := tr.Read(1, -1, 4); !errors.Is(err, ErrBadRange) {
		t.Fatalf("want ErrBadRange, got %v", err)
	}
	if _, err := tr.Read(1, 4, 2); !errors.Is(err, ErrBadRange) {
		t.Fatalf("want ErrBadRange, got %v", err)
	}
	if _, err := tr.Read(1, 0, 9); !errors.Is(err, ErrBadRange) {
		t.Fatalf("want ErrBadRange, got %v", err)
	}
}

func TestReadVersionZeroAllHoles(t *testing.T) {
	tr := newTestTree(t, 8)
	got, err := tr.Read(0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range got {
		if !d.ID.IsZero() {
			t.Fatalf("idx %d not a hole", i)
		}
	}
}

func TestDescAt(t *testing.T) {
	tr := newTestTree(t, 8)
	if err := tr.Write(1, 0, map[int64]chunk.Desc{2: desc("x")}); err != nil {
		t.Fatal(err)
	}
	d, ok, err := tr.DescAt(1, 2)
	if err != nil || !ok || d.ID != desc("x").ID {
		t.Fatalf("DescAt: %v %v %v", d, ok, err)
	}
	_, ok, err = tr.DescAt(1, 3)
	if err != nil || ok {
		t.Fatalf("hole DescAt: ok=%v err=%v", ok, err)
	}
}

func TestWalk(t *testing.T) {
	tr := newTestTree(t, 16)
	w := map[int64]chunk.Desc{1: desc("a"), 4: desc("b"), 9: desc("c")}
	if err := tr.Write(1, 0, w); err != nil {
		t.Fatal(err)
	}
	var visited []int64
	err := tr.Walk(1, 0, 16, func(idx int64, d chunk.Desc) error {
		visited = append(visited, idx)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 3 || visited[0] != 1 || visited[1] != 4 || visited[2] != 9 {
		t.Fatalf("visited=%v", visited)
	}
	// Bounded walk.
	visited = nil
	if err := tr.Walk(1, 2, 9, func(idx int64, d chunk.Desc) error {
		visited = append(visited, idx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 1 || visited[0] != 4 {
		t.Fatalf("bounded visited=%v", visited)
	}
	// Walk error propagation.
	wantErr := errors.New("stop")
	if err := tr.Walk(1, 0, 16, func(int64, chunk.Desc) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("walk error: %v", err)
	}
}

func TestRingShardsAndRoundTrip(t *testing.T) {
	stores := make([]Store, 4)
	for i := range stores {
		stores[i] = NewMemStore(fmt.Sprintf("m%d", i), nil, nil)
	}
	ring, err := NewRing(stores...)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTree(ring, 7, 256)
	if err != nil {
		t.Fatal(err)
	}
	w := map[int64]chunk.Desc{}
	for i := int64(0); i < 64; i++ {
		w[i] = desc(fmt.Sprintf("c%d", i))
	}
	if err := tr.Write(1, 0, w); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Read(1, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		if got[i].ID != w[i].ID {
			t.Fatalf("idx %d mismatch", i)
		}
	}
	// Distribution sanity: all shards should hold something.
	shards := ring.Shards()
	total := 0
	for i, n := range shards {
		if n == 0 {
			t.Errorf("shard %d is empty: %v", i, shards)
		}
		total += n
	}
	if total != ring.Len() {
		t.Fatalf("Len mismatch: %d vs %d", ring.Len(), total)
	}
}

func TestNewRingEmpty(t *testing.T) {
	if _, err := NewRing(); err == nil {
		t.Fatal("want error for empty ring")
	}
}

// Property: after a random sequence of versioned writes, reading any
// version reflects exactly the writes up to that version (read-your-writes
// plus snapshot isolation).
func TestSnapshotSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const span = 64
		tr, err := NewTree(NewMemStore("m", nil, nil), 1, span)
		if err != nil {
			return false
		}
		// model[v][idx] = expected desc at version v
		model := []map[int64]chunk.ID{{}} // version 0: empty
		nVersions := rng.Intn(6) + 2
		for v := 1; v <= nVersions; v++ {
			writes := map[int64]chunk.Desc{}
			nw := rng.Intn(8)
			for i := 0; i < nw; i++ {
				idx := int64(rng.Intn(span))
				writes[idx] = desc(fmt.Sprintf("s%d-v%d-i%d", seed, v, idx))
			}
			if err := tr.Write(uint64(v), uint64(v-1), writes); err != nil {
				return false
			}
			next := map[int64]chunk.ID{}
			for k, id := range model[v-1] {
				next[k] = id
			}
			for k, d := range writes {
				next[k] = d.ID
			}
			model = append(model, next)
		}
		for v := 0; v <= nVersions; v++ {
			got, err := tr.Read(uint64(v), 0, span)
			if err != nil {
				return false
			}
			for i := int64(0); i < span; i++ {
				want, ok := model[v][i]
				if ok && got[i].ID != want {
					return false
				}
				if !ok && !got[i].ID.IsZero() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHashKeyMatchesFNV pins the inline hash to the reference FNV-1a
// sequence the ring historically used (key words serialized
// little-endian through hash/fnv), so replacing the allocation per
// access did not reshuffle every shard assignment.
func TestHashKeyMatchesFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		k := NodeKey{
			Blob: rng.Uint64(), Version: rng.Uint64(),
			Lo: int64(rng.Uint64()), Hi: int64(rng.Uint64()),
		}
		h := fnv.New64a()
		var buf [8]byte
		for _, v := range []uint64{k.Blob, k.Version, uint64(k.Lo), uint64(k.Hi)} {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
		if got, want := hashKey(k), h.Sum64(); got != want {
			t.Fatalf("hashKey(%v) = %#x, reference fnv = %#x", k, got, want)
		}
	}
}

// TestRingAccessZeroAllocs: the per-access hash runs on every metadata
// Get/Put; it must not allocate.
func TestRingAccessZeroAllocs(t *testing.T) {
	stores := make([]Store, 3)
	for i := range stores {
		stores[i] = NewMemStore(fmt.Sprintf("m%d", i), nil, nil)
	}
	ring, err := NewRing(stores...)
	if err != nil {
		t.Fatal(err)
	}
	k := NodeKey{Blob: 9, Version: 4, Lo: 0, Hi: 64}
	if err := ring.Put(k, Node{LeftVer: 1}); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() { _ = hashKey(k) }); n != 0 {
		t.Fatalf("hashKey allocates %.1f per run", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, _, err := ring.Get(k); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ring Get allocates %.1f per run", n)
	}
}

// TestMemStoreNodeStore: Keys snapshots, Delete removes (absent keys a
// no-op), Len stays consistent — through both MemStore and Ring.
func TestMemStoreNodeStore(t *testing.T) {
	stores := make([]Store, 3)
	for i := range stores {
		stores[i] = NewMemStore(fmt.Sprintf("m%d", i), nil, nil)
	}
	ring, err := NewRing(stores...)
	if err != nil {
		t.Fatal(err)
	}
	var ns NodeStore = ring
	keys := make([]NodeKey, 0, 100)
	for i := int64(0); i < 100; i++ {
		k := NodeKey{Blob: uint64(i % 7), Version: uint64(i), Lo: i, Hi: i + 1}
		keys = append(keys, k)
		if err := ns.Put(k, Node{Leaf: true}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ns.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	got := map[NodeKey]bool{}
	for _, k := range ns.Keys() {
		if got[k] {
			t.Fatalf("duplicate key in snapshot: %v", k)
		}
		got[k] = true
	}
	if len(got) != 100 {
		t.Fatalf("Keys returned %d keys, want 100", len(got))
	}
	for _, k := range keys[:40] {
		if err := ns.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns.Delete(NodeKey{Blob: 999}); err != nil {
		t.Fatalf("deleting absent key: %v", err)
	}
	if got := ns.Len(); got != 60 {
		t.Fatalf("Len after deletes = %d, want 60", got)
	}
	for _, k := range keys[:40] {
		if _, ok, _ := ns.Get(k); ok {
			t.Fatalf("deleted key still present: %v", k)
		}
	}
	for _, k := range keys[40:] {
		if _, ok, _ := ns.Get(k); !ok {
			t.Fatalf("surviving key vanished: %v", k)
		}
	}
}

// countingStore counts Gets, to prove the pruned walk never re-descends
// a shared subtree.
type countingStore struct {
	Store
	gets int
}

func (c *countingStore) Get(k NodeKey) (Node, bool, error) {
	c.gets++
	return c.Store.Get(k)
}

// TestWalkNodesPrunesSharedSubtrees: walking all versions of a BLOB with
// a shared visited set costs exactly one Get per distinct node, and the
// union of visited leaves equals every version's Walk output.
func TestWalkNodesPrunesSharedSubtrees(t *testing.T) {
	mem := NewMemStore("m1", nil, nil)
	cs := &countingStore{Store: mem}
	tr, err := NewTree(cs, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	// v1 writes a wide base; v2..v5 each touch two slots.
	w1 := map[int64]chunk.Desc{}
	for i := int64(0); i < 32; i++ {
		w1[i] = desc(fmt.Sprintf("v1-%d", i))
	}
	if err := tr.Write(1, 0, w1); err != nil {
		t.Fatal(err)
	}
	for v := uint64(2); v <= 5; v++ {
		w := map[int64]chunk.Desc{
			int64(v): desc(fmt.Sprintf("v%d-a", v)),
			40:       desc(fmt.Sprintf("v%d-b", v)),
		}
		if err := tr.Write(v, v-1, w); err != nil {
			t.Fatal(err)
		}
	}

	cs.gets = 0
	visited := map[NodeKey]struct{}{}
	pruned := map[chunk.ID]bool{}
	for v := uint64(5); v >= 1; v-- {
		err := tr.WalkNodes(v,
			func(k NodeKey) bool { _, seen := visited[k]; return seen },
			func(k NodeKey, n Node) error {
				visited[k] = struct{}{}
				if n.Leaf && !n.Desc.ID.IsZero() {
					pruned[n.Desc.ID] = true
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if cs.gets != len(visited) {
		t.Fatalf("pruned walks did %d Gets over %d distinct nodes: shared subtrees re-descended", cs.gets, len(visited))
	}
	if got, want := len(visited), mem.Len(); got != want {
		t.Fatalf("visited %d nodes, store holds %d: coverage gap", got, want)
	}
	naive := map[chunk.ID]bool{}
	for v := uint64(1); v <= 5; v++ {
		if err := tr.Walk(v, 0, tr.Span(), func(_ int64, d chunk.Desc) error {
			naive[d.ID] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(naive) != len(pruned) {
		t.Fatalf("pruned chunk set %d != naive %d", len(pruned), len(naive))
	}
	for id := range naive {
		if !pruned[id] {
			t.Fatalf("naive chunk %v missing from pruned set", id.Short())
		}
	}
}

// Property: for any random version chain (overwrites, appends, holes)
// and any retained subset of versions, the shared-subtree-pruned
// node walk reaches exactly the chunk-ID set a naive per-version Walk
// reaches.
func TestPrunedWalkEquivalenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const span = 128
		tr, err := NewTree(NewMemStore("m", nil, nil), 1, span)
		if err != nil {
			return false
		}
		nVersions := rng.Intn(10) + 2
		tail := int64(0) // append frontier
		for v := 1; v <= nVersions; v++ {
			writes := map[int64]chunk.Desc{}
			switch rng.Intn(3) {
			case 0: // overwrite a random region
				lo := int64(rng.Intn(span / 2))
				for i := lo; i < lo+int64(rng.Intn(8)); i++ {
					writes[i] = desc(fmt.Sprintf("s%d-v%d-%d", seed, v, i))
				}
			case 1: // append past the frontier
				n := int64(rng.Intn(6))
				for i := tail; i < tail+n && i < span; i++ {
					writes[i] = desc(fmt.Sprintf("s%d-v%d-%d", seed, v, i))
				}
				tail += n
			default: // scattered holes-and-slots
				for i := 0; i < rng.Intn(5); i++ {
					idx := int64(rng.Intn(span))
					writes[idx] = desc(fmt.Sprintf("s%d-v%d-%d", seed, v, idx))
				}
			}
			if err := tr.Write(uint64(v), uint64(v-1), writes); err != nil {
				return false
			}
		}
		// Random retained subset (retirement drops arbitrary versions).
		var retained []uint64
		for v := 1; v <= nVersions; v++ {
			if rng.Intn(3) != 0 {
				retained = append(retained, uint64(v))
			}
		}
		naive := map[chunk.ID]bool{}
		for _, v := range retained {
			if err := tr.Walk(v, 0, span, func(_ int64, d chunk.Desc) error {
				naive[d.ID] = true
				return nil
			}); err != nil {
				return false
			}
		}
		visited := map[NodeKey]struct{}{}
		pruned := map[chunk.ID]bool{}
		// Walk newest-first like the mark phase.
		for i := len(retained) - 1; i >= 0; i-- {
			err := tr.WalkNodes(retained[i],
				func(k NodeKey) bool { _, seen := visited[k]; return seen },
				func(k NodeKey, n Node) error {
					visited[k] = struct{}{}
					if n.Leaf && !n.Desc.ID.IsZero() {
						pruned[n.Desc.ID] = true
					}
					return nil
				})
			if err != nil {
				return false
			}
		}
		if len(pruned) != len(naive) {
			return false
		}
		for id := range naive {
			if !pruned[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepTreeDefaultSpan(t *testing.T) {
	tr := newTestTree(t, 0) // DefaultSpan = 2^32
	far := int64(3_000_000_000)
	if err := tr.Write(1, 0, map[int64]chunk.Desc{0: desc("lo"), far: desc("hi")}); err != nil {
		t.Fatal(err)
	}
	d, ok, err := tr.DescAt(1, far)
	if err != nil || !ok || d.ID != desc("hi").ID {
		t.Fatalf("deep read: %v %v %v", d, ok, err)
	}
}

// TestListNodesPagingOrderAndCompleteness: ListNodes pages the full key
// set in (Blob, Version, Lo, Hi) order with no duplicates or gaps, for
// both a single MemStore and a Ring (whose pages merge shard pages),
// at several page sizes including ones that straddle stripe boundaries.
func TestListNodesPagingOrderAndCompleteness(t *testing.T) {
	mem := NewMemStore("m1", nil, nil)
	stores := make([]Store, 3)
	for i := range stores {
		stores[i] = NewMemStore(fmt.Sprintf("r%d", i), nil, nil)
	}
	ring, err := NewRing(stores...)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	want := make([]NodeKey, 0, 500)
	seen := map[NodeKey]bool{}
	for len(want) < 500 {
		k := NodeKey{
			Blob:    uint64(rng.Intn(9)),
			Version: uint64(1 + rng.Intn(50)),
			Lo:      int64(rng.Intn(64)),
		}
		k.Hi = k.Lo + int64(1+rng.Intn(8))
		if seen[k] {
			continue
		}
		seen[k] = true
		want = append(want, k)
		if err := mem.Put(k, Node{Leaf: true}); err != nil {
			t.Fatal(err)
		}
		if err := ring.Put(k, Node{Leaf: true}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(want, func(i, j int) bool { return nodeKeyCmp(want[i], want[j]) < 0 })

	for _, ns := range []NodeStore{mem, ring} {
		for _, limit := range []int{1, 7, 128, 1000} {
			var got []NodeKey
			var after NodeKey
			for {
				page, more := ns.ListNodes(after, limit)
				if len(page) > limit {
					t.Fatalf("page of %d exceeds limit %d", len(page), limit)
				}
				got = append(got, page...)
				if !more {
					break
				}
				if len(page) == 0 {
					t.Fatal("more=true with an empty page")
				}
				after = page[len(page)-1]
			}
			if len(got) != len(want) {
				t.Fatalf("limit %d: paged %d keys, want %d", limit, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("limit %d: order diverges at %d: %v vs %v", limit, i, got[i], want[i])
				}
			}
		}
	}
}

// TestListNodesDeleteDuringPaging: keys deleted behind the cursor never
// reappear, keys ahead of it disappear from later pages — the property
// the gc node sweep relies on while deleting as it pages.
func TestListNodesDeleteDuringPaging(t *testing.T) {
	mem := NewMemStore("m1", nil, nil)
	var keys []NodeKey
	for i := int64(0); i < 200; i++ {
		k := NodeKey{Blob: 1, Version: uint64(i + 1), Lo: 0, Hi: 1}
		keys = append(keys, k)
		if err := mem.Put(k, Node{Leaf: true}); err != nil {
			t.Fatal(err)
		}
	}
	var got []NodeKey
	var after NodeKey
	for {
		page, more := mem.ListNodes(after, 10)
		for _, k := range page {
			got = append(got, k)
			if err := mem.Delete(k); err != nil { // sweep-style: delete as we go
				t.Fatal(err)
			}
		}
		if !more {
			break
		}
		after = page[len(page)-1]
	}
	if len(got) != len(keys) {
		t.Fatalf("delete-as-you-page visited %d keys, want %d", len(got), len(keys))
	}
	if mem.Len() != 0 {
		t.Fatalf("%d keys survived a full delete sweep", mem.Len())
	}
}

// TestKeysMatchesListNodes: the deprecated snapshot stays consistent
// with the paged enumeration it now wraps.
func TestKeysMatchesListNodes(t *testing.T) {
	mem := NewMemStore("m1", nil, nil)
	for i := int64(0); i < 300; i++ {
		k := NodeKey{Blob: uint64(i % 5), Version: uint64(i + 1), Lo: i % 16, Hi: i%16 + 1}
		if err := mem.Put(k, Node{Leaf: true}); err != nil {
			t.Fatal(err)
		}
	}
	keys := mem.Keys()
	if len(keys) != mem.Len() {
		t.Fatalf("Keys returned %d, Len says %d", len(keys), mem.Len())
	}
	for i := 1; i < len(keys); i++ {
		if nodeKeyCmp(keys[i-1], keys[i]) >= 0 {
			t.Fatal("Keys (via ListNodes) not strictly ascending")
		}
	}
}
